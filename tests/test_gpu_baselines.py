"""Tests for the four GPU baseline reimplementations."""

import numpy as np
import pytest

from repro.baselines.gpu import (
    GPU_BASELINES,
    groute_cc,
    gunrock_cc,
    irgl_cc,
    shiloach_vishkin_cc,
    soman_cc,
)
from repro.core.ecl_cc_gpu import ecl_cc_gpu
from repro.core.labels import canonicalize
from repro.verify import reference_labels
from repro.generators import load, load_suite
from repro.generators.roads import long_path
from repro.graph.build import empty_graph, from_edges
from repro.gpusim.device import K40

ALL_BASELINES = dict(GPU_BASELINES, **{"Shiloach-Vishkin": shiloach_vishkin_cc})


class TestCorrectness:
    @pytest.mark.parametrize("name", sorted(ALL_BASELINES))
    def test_known_graph(self, name, triangle_plus_edge):
        res = ALL_BASELINES[name](triangle_plus_edge)
        assert canonicalize(res.labels).tolist() == [0, 0, 0, 3, 3, 5]

    @pytest.mark.parametrize("name", sorted(ALL_BASELINES))
    def test_min_id_labels_direct(self, name, two_cliques):
        # All baselines hook larger ids under smaller: labels are min ids
        # directly, no canonicalization needed.
        res = ALL_BASELINES[name](two_cliques)
        assert np.array_equal(res.labels, reference_labels(two_cliques))

    @pytest.mark.parametrize("name", sorted(ALL_BASELINES))
    def test_isolated_vertices(self, name, isolated_graph):
        res = ALL_BASELINES[name](isolated_graph)
        assert res.labels.tolist() == [0, 1, 2, 3, 4]

    @pytest.mark.parametrize("name", sorted(ALL_BASELINES))
    def test_empty_graph(self, name):
        res = ALL_BASELINES[name](empty_graph(0))
        assert res.labels.size == 0

    @pytest.mark.parametrize("name", sorted(ALL_BASELINES))
    def test_long_path(self, name):
        g = long_path(200)
        res = ALL_BASELINES[name](g)
        assert np.all(canonicalize(res.labels) == 0)

    @pytest.mark.parametrize("name", sorted(ALL_BASELINES))
    @pytest.mark.parametrize("seed", (None, 5))
    def test_tiny_suite(self, name, seed):
        for g in load_suite("tiny", names=["rmat16.sym", "europe_osm", "as-skitter"]):
            res = ALL_BASELINES[name](g, seed=seed)
            assert np.array_equal(
                canonicalize(res.labels), reference_labels(g)
            ), g.name

    @pytest.mark.parametrize("name", sorted(ALL_BASELINES))
    def test_k40(self, name):
        g = load("internet", "tiny")
        res = ALL_BASELINES[name](g, device=K40)
        assert np.array_equal(canonicalize(res.labels), reference_labels(g))


class TestAlgorithmShape:
    def test_soman_iterates(self):
        g = load("europe_osm", "tiny")
        res = soman_cc(g)
        assert res.iterations >= 2  # label propagation needs rounds

    def test_soman_edge_marking_reduces_hook_work(self):
        g = load("rmat16.sym", "tiny")
        marked = soman_cc(g, mark_edges=True)
        unmarked = soman_cc(g, mark_edges=False)
        hooks_m = sum(k.instructions for k in marked.kernels if k.name == "hook")
        hooks_u = sum(k.instructions for k in unmarked.kernels if k.name == "hook")
        assert hooks_m < hooks_u

    def test_groute_segments(self):
        g = load("coPapersDBLP", "tiny")  # m >> n: several segments
        res = groute_cc(g)
        assert res.iterations == -(-g.num_edges // g.num_vertices)

    def test_groute_custom_segment_size(self):
        g = load("internet", "tiny")
        res = groute_cc(g, segment_size=50)
        assert res.iterations == -(-g.num_edges // 50)
        assert np.array_equal(canonicalize(res.labels), reference_labels(g))

    def test_gunrock_filters_shrink_frontier(self):
        g = load("rmat16.sym", "tiny")
        res = gunrock_cc(g)
        # The run must include filter kernels (the defining operator).
        names = {k.name for k in res.kernels}
        assert {"hook", "filter_edges", "scan", "scatter"} <= names

    def test_irgl_checks_convergence_separately(self):
        g = load("internet", "tiny")
        res = irgl_cc(g)
        assert any(k.name == "check" for k in res.kernels)

    def test_sv_runs_multiple_iterations_on_path(self):
        res = shiloach_vishkin_cc(long_path(64))
        assert res.iterations >= 2

    def test_result_metadata(self):
        g = load("internet", "tiny")
        res = soman_cc(g)
        assert res.name == "Soman"
        assert res.total_time_ms > 0
        assert res.total_cycles > 0


class TestPaperOrdering:
    """§5.2's headline: ECL-CC is fastest; Groute is the closest GPU code."""

    def test_ecl_beats_all_on_road_graph(self):
        g = load("USA-road-d.NY", "small")
        from repro.gpusim.device import TITAN_X, scaled_device

        dev = scaled_device(TITAN_X, g.num_arcs)
        ecl = ecl_cc_gpu(g, device=dev).total_time_ms
        for name, fn in GPU_BASELINES.items():
            assert fn(g, device=dev).total_time_ms > ecl, name

    def test_groute_closest_on_skewed_graph(self):
        g = load("rmat16.sym", "small")
        from repro.gpusim.device import TITAN_X, scaled_device

        dev = scaled_device(TITAN_X, g.num_arcs)
        ecl = ecl_cc_gpu(g, device=dev).total_time_ms
        times = {n: fn(g, device=dev).total_time_ms for n, fn in GPU_BASELINES.items()}
        assert all(t > ecl for t in times.values())
        assert times["Groute"] == min(times.values())
