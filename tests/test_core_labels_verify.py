"""Tests for label utilities and the verification oracle."""

import numpy as np
import pytest

from repro.core.labels import (
    canonicalize,
    component_sizes,
    equivalent_labelings,
    largest_component,
    num_components,
)
from repro.verify import (
    assert_valid_labels,
    bfs_labels,
    reference_labels,
    verify_labels,
)
from repro.errors import VerificationError
from repro.graph.build import empty_graph, from_edges


class TestLabels:
    def test_num_components(self):
        assert num_components(np.array([0, 0, 3, 3, 5])) == 3
        assert num_components(np.empty(0, dtype=np.int64)) == 0

    def test_component_sizes(self):
        sizes = component_sizes(np.array([0, 0, 3, 3, 3]))
        assert sizes == {0: 2, 3: 3}

    def test_canonicalize_arbitrary_ids(self):
        # Component ids 7 and 9 map to min member vertices 0 and 2.
        labels = np.array([7, 7, 9, 9])
        assert canonicalize(labels).tolist() == [0, 0, 2, 2]

    def test_canonicalize_idempotent(self):
        labels = np.array([0, 0, 2, 2, 2])
        assert canonicalize(canonicalize(labels)).tolist() == labels.tolist()

    def test_equivalent_labelings(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([9, 9, 4, 4])
        c = np.array([0, 1, 1, 1])
        assert equivalent_labelings(a, b)
        assert not equivalent_labelings(a, c)
        assert not equivalent_labelings(a, np.array([0, 0, 1]))

    def test_largest_component(self):
        label, size = largest_component(np.array([0, 0, 0, 3, 3]))
        assert (label, size) == (0, 3)
        with pytest.raises(ValueError):
            largest_component(np.empty(0, dtype=np.int64))


class TestOracles:
    def test_reference_matches_bfs(self, triangle_plus_edge, two_cliques, path_graph):
        for g in (triangle_plus_edge, two_cliques, path_graph):
            assert np.array_equal(reference_labels(g), bfs_labels(g))

    def test_reference_empty(self):
        assert reference_labels(empty_graph(0)).size == 0

    def test_reference_isolated(self, isolated_graph):
        assert reference_labels(isolated_graph).tolist() == [0, 1, 2, 3, 4]

    def test_known_labels(self, triangle_plus_edge):
        assert reference_labels(triangle_plus_edge).tolist() == [0, 0, 0, 3, 3, 5]


class TestVerify:
    def test_accepts_correct(self, triangle_plus_edge):
        labels = np.array([0, 0, 0, 3, 3, 5])
        assert verify_labels(triangle_plus_edge, labels)
        assert_valid_labels(triangle_plus_edge, labels)

    def test_rejects_wrong_partition(self, triangle_plus_edge):
        labels = np.array([0, 0, 0, 0, 0, 0])
        assert not verify_labels(triangle_plus_edge, labels)
        with pytest.raises(VerificationError, match="wrong partition"):
            assert_valid_labels(triangle_plus_edge, labels)

    def test_rejects_non_canonical(self, triangle_plus_edge):
        labels = np.array([1, 1, 1, 4, 4, 5])  # right partition, wrong ids
        with pytest.raises(VerificationError, match="not canonical"):
            assert_valid_labels(triangle_plus_edge, labels)

    def test_rejects_wrong_shape(self, triangle_plus_edge):
        assert not verify_labels(triangle_plus_edge, np.array([0, 0]))
        with pytest.raises(VerificationError, match="shape"):
            assert_valid_labels(triangle_plus_edge, np.array([0, 0]))
