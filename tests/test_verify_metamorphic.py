"""Metamorphic regression pins: frontier, dense, FastSV, Afforest, the
out-of-core streamer, and the distributed merge must satisfy the
solver-independent invariants."""

import numpy as np
import pytest

from repro.core.api import connected_components
from repro.generators.suite import load
from repro.graph.build import from_edges
from repro.verify import METAMORPHIC_CHECKS
from repro.verify.metamorphic import (
    disjoint_union,
    permute_vertices,
    shuffle_adjacency,
)

FAST_BACKENDS = ("numpy", "numpy-dense", "fastsv")
SIM_BACKENDS = ("afforest",)


def _graphs():
    return [
        from_edges([(0, 1), (1, 2), (0, 2), (3, 4)], num_vertices=6, name="tri+edge"),
        from_edges([(i, i + 1) for i in range(9)], num_vertices=10, name="path10"),
        from_edges([(0, i) for i in range(1, 8)], num_vertices=8, name="star8"),
        from_edges([], num_vertices=5, name="isolates"),
    ]


def _runner(backend):
    return lambda g: connected_components(g, backend=backend, full_result=False)


@pytest.mark.parametrize("backend", FAST_BACKENDS)
@pytest.mark.parametrize("check", sorted(METAMORPHIC_CHECKS))
def test_fast_backends_invariants(backend, check):
    run = _runner(backend)
    fn = METAMORPHIC_CHECKS[check]
    for i, g in enumerate(_graphs()):
        assert fn(run, g, np.random.default_rng(i)) is None


@pytest.mark.parametrize("backend", FAST_BACKENDS)
@pytest.mark.parametrize("name", ["rmat16.sym", "internet"])
def test_fast_backends_suite_tiny(backend, name):
    run = _runner(backend)
    g = load(name, "tiny")
    for check in sorted(METAMORPHIC_CHECKS):
        assert METAMORPHIC_CHECKS[check](run, g, np.random.default_rng(7)) is None


@pytest.mark.parametrize("backend", SIM_BACKENDS)
@pytest.mark.parametrize("check", sorted(METAMORPHIC_CHECKS))
def test_simulated_backends_invariants(backend, check):
    run = _runner(backend)
    fn = METAMORPHIC_CHECKS[check]
    for i, g in enumerate(_graphs()[:2]):
        assert fn(run, g, np.random.default_rng(i)) is None


@pytest.mark.parametrize("check", sorted(METAMORPHIC_CHECKS))
def test_oocore_invariants(check):
    """The external-memory path satisfies every metamorphic invariant
    with a shard count that forces cross-shard boundary merging."""

    def run(g):
        return connected_components(
            g, backend="oocore", shards=3, full_result=False
        )

    fn = METAMORPHIC_CHECKS[check]
    for i, g in enumerate(_graphs()):
        assert fn(run, g, np.random.default_rng(i)) is None


@pytest.mark.parametrize("check", sorted(METAMORPHIC_CHECKS))
def test_dist_invariants(check):
    """The distributed merge satisfies every metamorphic invariant with
    a host count that forces cross-host boundary exchange."""

    def run(g):
        return connected_components(
            g, backend="distributed", hosts=3, full_result=False
        )

    fn = METAMORPHIC_CHECKS[check]
    for i, g in enumerate(_graphs()):
        assert fn(run, g, np.random.default_rng(i)) is None


class TestTransforms:
    def test_permute_vertices_preserves_structure(self):
        g = from_edges([(0, 1), (2, 3)], num_vertices=4, name="g")
        perm = np.array([3, 2, 1, 0])
        pg = permute_vertices(g, perm)
        assert pg.num_vertices == 4
        assert pg.num_edges == 2
        assert set(map(tuple, zip(*pg.arc_array()))) == {
            (3, 2), (2, 3), (1, 0), (0, 1),
        }

    def test_shuffle_adjacency_same_sets(self):
        g = load("rmat16.sym", "tiny")
        sg = shuffle_adjacency(g, np.random.default_rng(0))
        assert sg.num_vertices == g.num_vertices
        assert sg.num_arcs == g.num_arcs
        for v in range(g.num_vertices):
            assert set(sg.neighbors(v)) == set(g.neighbors(v))
        # The shuffle must genuinely unsort at least one adjacency list,
        # or the edge_order invariant never exercises the unsorted paths.
        assert not sg.has_sorted_adjacency()

    def test_disjoint_union_shapes(self):
        a = from_edges([(0, 1)], num_vertices=2, name="a")
        b = from_edges([(0, 1), (1, 2)], num_vertices=3, name="b")
        u = disjoint_union(a, b)
        assert u.num_vertices == 5
        assert u.num_edges == 3
        labels = connected_components(u, backend="numpy")
        assert np.array_equal(labels, np.array([0, 0, 2, 2, 2]))


def test_invariants_catch_a_wrong_solver():
    """Falsifiability: a solver keyed to vertex IDs trips `permutation`."""

    def biased(graph):
        labels = connected_components(graph, backend="numpy", full_result=False)
        out = labels.copy()
        # Wrong for any vertex >= 5: pretends high IDs are singletons.
        out[5:] = np.arange(5, graph.num_vertices)
        return out

    g = from_edges([(i, i + 1) for i in range(9)], num_vertices=10, name="p")
    results = [
        METAMORPHIC_CHECKS[c](biased, g, np.random.default_rng(1))
        for c in sorted(METAMORPHIC_CHECKS)
    ]
    assert any(r is not None for r in results)
