"""Property-based test: the structural verifier accepts exactly the
labelings BFS induces and rejects every single-element perturbation."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graph.build import from_edges
from repro.verify import bfs_labels, reference_labels, verify_labels_structural


@st.composite
def graphs(draw):
    """Random small graphs, biased toward the degenerate shapes."""
    n = draw(st.integers(min_value=0, max_value=14))
    if n == 0:
        return from_edges([], num_vertices=0, name="hyp-empty")
    m = draw(st.integers(min_value=0, max_value=3 * n))
    vert = st.integers(min_value=0, max_value=n - 1)
    # Self-loops allowed on purpose: the builder must drop them.
    edges = draw(st.lists(st.tuples(vert, vert), min_size=m, max_size=m))
    return from_edges(edges, num_vertices=n, name="hyp")


@settings(max_examples=120, deadline=None)
@given(graphs())
def test_accepts_bfs_induced_labels(graph):
    labels = bfs_labels(graph)
    assert verify_labels_structural(graph, labels)
    # bfs and scipy agree (both canonical min-member IDs).
    assert np.array_equal(labels, reference_labels(graph))


@settings(max_examples=120, deadline=None)
@given(graphs(), st.data())
def test_rejects_any_single_perturbation(graph, data):
    n = graph.num_vertices
    if n == 0:
        return
    labels = bfs_labels(graph)
    i = data.draw(st.integers(min_value=0, max_value=n - 1), label="index")
    # Candidate wrong values: every in-range label plus out-of-range ones.
    wrong = data.draw(
        st.integers(min_value=-2, max_value=n + 1).filter(
            lambda w: w != labels[i]
        ),
        label="value",
    )
    bad = labels.copy()
    bad[i] = wrong
    assert not verify_labels_structural(graph, bad)


@settings(max_examples=60, deadline=None)
@given(graphs())
def test_rejects_wrong_shape(graph):
    labels = bfs_labels(graph)
    assert not verify_labels_structural(graph, np.append(labels, 0))
    if graph.num_vertices:
        assert not verify_labels_structural(graph, labels[:-1])


def test_degenerate_cases_explicitly():
    empty = from_edges([], num_vertices=0, name="empty")
    assert verify_labels_structural(empty, np.empty(0, dtype=np.int64))

    single = from_edges([], num_vertices=1, name="single")
    assert verify_labels_structural(single, np.zeros(1, dtype=np.int64))

    # Self-loop input: dropped by the builder, vertex stays its own rep.
    loops = from_edges([(0, 0), (1, 2)], num_vertices=3, name="loops")
    assert verify_labels_structural(loops, np.array([0, 1, 1]))
    assert not verify_labels_structural(loops, np.array([0, 0, 0]))

    # Merged-components labeling (partition too coarse) must be rejected
    # even though every screen except reachability passes.
    two = from_edges([(0, 1), (2, 3)], num_vertices=4, name="two")
    assert verify_labels_structural(two, np.array([0, 0, 2, 2]))
    assert not verify_labels_structural(two, np.array([0, 0, 0, 0]))
