"""Tests for the top-level CLI and the report exporters."""

import json

import numpy as np
import pytest

from repro.__main__ import main
from repro.experiments.export import to_csv, to_json, to_markdown, write_report
from repro.experiments.report import ExperimentReport
from repro.graph.build import from_edges
from repro.graph.io import write_edge_list


@pytest.fixture
def graph_file(tmp_path):
    g = from_edges([(0, 1), (1, 2), (3, 4)], num_vertices=5, name="clifixture")
    p = tmp_path / "g.el"
    write_edge_list(g, p)
    return p


class TestCliCC:
    def test_basic(self, graph_file, capsys):
        assert main(["cc", str(graph_file)]) == 0
        out = capsys.readouterr().out
        assert "components=2" in out

    def test_verify_flag(self, graph_file, capsys):
        assert main(["cc", str(graph_file), "--verify"]) == 0
        assert "verification: OK" in capsys.readouterr().out

    @pytest.mark.parametrize("backend", ["serial", "gpu", "omp"])
    def test_backends(self, graph_file, backend):
        assert main(["cc", str(graph_file), "--backend", backend]) == 0

    def test_sizes_and_output(self, graph_file, tmp_path, capsys):
        out_path = tmp_path / "labels.npy"
        assert main(["cc", str(graph_file), "--sizes", "2",
                     "--output", str(out_path)]) == 0
        labels = np.load(out_path)
        assert labels.tolist() == [0, 0, 0, 3, 3]
        assert "component 0: 3 vertices" in capsys.readouterr().out


class TestCliStats:
    def test_stats(self, graph_file, capsys):
        assert main(["stats", str(graph_file)]) == 0
        out = capsys.readouterr().out
        assert "CCs" in out


class TestCliConvert:
    @pytest.mark.parametrize("ext", [".gr", ".mtx", ".npz", ".el"])
    def test_round_trips(self, graph_file, tmp_path, ext):
        out = tmp_path / f"converted{ext}"
        assert main(["convert", str(graph_file), str(out)]) == 0
        from repro.graph.io import read_auto

        g = read_auto(out)
        assert g.num_edges == 3


class TestCliGenerate:
    def test_generate(self, tmp_path, capsys):
        out = tmp_path / "g.npz"
        assert main(["generate", "internet", str(out), "--scale", "tiny"]) == 0
        from repro.graph.io import load_csr_npz

        g = load_csr_npz(out)
        assert g.num_vertices == 120


@pytest.fixture
def sample_report():
    r = ExperimentReport("figX", "Sample", ["Graph", "A", "B"])
    r.add_row("g1", 1.0, 2.5)
    r.add_row("g2", None, 4.0)
    r.compute_geomean()
    r.notes.append("a note")
    return r


class TestExport:
    def test_csv(self, sample_report, tmp_path):
        p = tmp_path / "r.csv"
        to_csv(sample_report, p)
        lines = p.read_text().strip().splitlines()
        assert lines[0].startswith("Graph,A,B")
        assert "n/a" in lines[2]
        assert len(lines) == 4  # header + 2 rows + geomean

    def test_json(self, sample_report, tmp_path):
        p = tmp_path / "r.json"
        to_json(sample_report, p)
        data = json.loads(p.read_text())
        assert data["experiment_id"] == "figX"
        assert data["notes"] == ["a note"]

    def test_markdown(self, sample_report):
        md = to_markdown(sample_report)
        assert md.startswith("### figX")
        assert "| g1 | 1.000 | 2.500 |" in md
        assert "n/a" in md
        assert "*a note*" in md

    def test_write_report(self, sample_report, tmp_path):
        paths = write_report(sample_report, tmp_path / "out")
        assert all(p.exists() for p in paths.values())


class TestCliProfileMsf:
    def test_profile(self, graph_file, capsys):
        assert main(["profile", str(graph_file), "--scale-cache"]) == 0
        out = capsys.readouterr().out
        assert "compute1" in out and "IPC" in out and "paths:" in out

    def test_profile_k40_jump_variant(self, graph_file, capsys):
        assert main(["profile", str(graph_file), "--device", "k40",
                     "--jump", "Jump2"]) == 0
        assert "K40" in capsys.readouterr().out

    def test_msf(self, graph_file, capsys):
        assert main(["msf", str(graph_file)]) == 0
        out = capsys.readouterr().out
        assert "MSF has 3 edges in 2 tree(s)" in out

    def test_msf_gpu_crosscheck(self, graph_file, capsys):
        assert main(["msf", str(graph_file), "--gpu", "--seed", "3"]) == 0
        assert "forests identical: True" in capsys.readouterr().out
