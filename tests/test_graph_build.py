"""Unit tests for the graph builders (the paper's §4 preprocessing)."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.build import (
    empty_graph,
    from_adjacency,
    from_arc_arrays,
    from_edges,
    relabel_compact,
)
from repro.graph.validate import validate_undirected


class TestFromEdges:
    def test_drops_self_loops(self):
        g = from_edges([(0, 0), (0, 1), (1, 1)])
        assert g.num_edges == 1

    def test_merges_duplicates(self):
        g = from_edges([(0, 1), (0, 1), (1, 0)])
        assert g.num_edges == 1
        assert g.num_arcs == 2

    def test_adds_back_edges(self):
        g = from_edges([(0, 1)])
        assert 0 in g.neighbors(1)
        assert 1 in g.neighbors(0)

    def test_result_is_valid_undirected(self):
        g = from_edges([(0, 1), (1, 2), (2, 0), (2, 2), (0, 1)])
        validate_undirected(g)

    def test_num_vertices_includes_isolated(self):
        g = from_edges([(0, 1)], num_vertices=5)
        assert g.num_vertices == 5
        assert g.degree(4) == 0

    def test_num_vertices_too_small_rejected(self):
        with pytest.raises(GraphFormatError):
            from_edges([(0, 9)], num_vertices=5)

    def test_empty_edge_list(self):
        g = from_edges([], num_vertices=3)
        assert g.num_vertices == 3
        assert g.num_edges == 0

    def test_negative_ids_rejected(self):
        with pytest.raises(GraphFormatError):
            from_edges([(-1, 0)])

    def test_malformed_shape_rejected(self):
        with pytest.raises(GraphFormatError):
            from_edges(np.array([1, 2, 3]))

    def test_accepts_ndarray(self):
        g = from_edges(np.array([[0, 1], [1, 2]]))
        assert g.num_edges == 2


class TestFromArcArrays:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(GraphFormatError):
            from_arc_arrays(np.array([0, 1]), np.array([1]))

    def test_directed_input_symmetrized(self):
        g = from_arc_arrays(np.array([0, 1, 2]), np.array([1, 2, 0]))
        validate_undirected(g)
        assert g.num_edges == 3

    def test_dedup_across_directions(self):
        # (0,1) given in both directions must produce exactly one edge.
        g = from_arc_arrays(np.array([0, 1]), np.array([1, 0]))
        assert g.num_edges == 1


class TestFromAdjacency:
    def test_round_trip(self):
        g = from_adjacency([[1, 2], [0], [0], []])
        assert g.num_vertices == 4
        assert sorted(g.neighbors(0).tolist()) == [1, 2]

    def test_asymmetric_adjacency_fixed(self):
        g = from_adjacency([[1], [], []])
        assert 0 in g.neighbors(1)


class TestEmptyGraph:
    def test_counts(self):
        g = empty_graph(7)
        assert g.num_vertices == 7
        assert g.num_edges == 0

    def test_zero_vertices(self):
        g = empty_graph(0)
        assert g.num_vertices == 0


class TestRelabelCompact:
    def test_drops_isolated(self):
        g = from_edges([(0, 5)], num_vertices=6)
        compacted, mapping = relabel_compact(g)
        assert compacted.num_vertices == 2
        assert mapping.tolist() == [0, 5]

    def test_keep_isolated(self):
        g = from_edges([(0, 2)], num_vertices=3)
        compacted, mapping = relabel_compact(g, drop_isolated=False)
        assert compacted.num_vertices == 3
        assert mapping.tolist() == [0, 1, 2]

    def test_edges_preserved(self):
        g = from_edges([(1, 3), (3, 7)], num_vertices=8)
        compacted, mapping = relabel_compact(g)
        assert compacted.num_edges == 2
        # The edge structure maps back onto the original ids.
        back = {tuple(sorted((mapping[u], mapping[v]))) for u, v in compacted.edges()}
        assert back == {(1, 3), (3, 7)}
