"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.verify import reference_labels
from repro.generators import (
    caterpillar,
    community_power_law,
    delaunay_graph,
    grid2d,
    grid3d,
    kronecker_g500,
    long_path,
    preferential_attachment,
    random_gnm,
    random_out_degree,
    rmat,
    road_mesh,
)
from repro.graph.validate import validate_undirected


def _components(g):
    return np.unique(reference_labels(g)).size


class TestGrid:
    def test_dimensions(self):
        g = grid2d(4, 5)
        assert g.num_vertices == 20
        assert g.num_edges == 4 * 4 + 3 * 5  # horizontal + vertical

    def test_degree_bounds(self):
        deg = grid2d(10, 10).degrees()
        assert deg.min() == 2 and deg.max() == 4

    def test_periodic_degree_uniform(self):
        deg = grid2d(5, 5, periodic=True).degrees()
        assert np.all(deg == 4)

    def test_connected(self):
        assert _components(grid2d(7, 9)) == 1

    def test_single_cell(self):
        g = grid2d(1, 1)
        assert g.num_vertices == 1 and g.num_edges == 0

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            grid2d(0, 5)

    def test_grid3d(self):
        g = grid3d(3, 3, 3)
        assert g.num_vertices == 27
        assert _components(g) == 1
        validate_undirected(g)


class TestRandom:
    def test_out_degree_reproducible(self):
        a = random_out_degree(100, 4, seed=1)
        b = random_out_degree(100, 4, seed=1)
        assert np.array_equal(a.col_idx, b.col_idx)

    def test_out_degree_seed_matters(self):
        a = random_out_degree(100, 4, seed=1)
        b = random_out_degree(100, 4, seed=2)
        assert not np.array_equal(a.col_idx, b.col_idx)

    def test_out_degree_bounds(self):
        g = random_out_degree(200, 4, seed=0)
        validate_undirected(g)
        assert g.degrees().mean() <= 8.0

    def test_gnm_exact_edge_count(self):
        g = random_gnm(50, 100, seed=3)
        assert g.num_edges == 100

    def test_gnm_too_many_edges(self):
        with pytest.raises(ValueError):
            random_gnm(4, 100)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            random_out_degree(0, 4)


class TestRmat:
    def test_vertex_count(self):
        g = rmat(8, 4.0, seed=0)
        assert g.num_vertices == 256

    def test_skewed_degrees(self):
        g = kronecker_g500(10, 16.0, seed=0)
        deg = g.degrees()
        # Graph500 parameters produce a heavy tail plus isolated vertices.
        assert deg.max() > 10 * max(deg.mean(), 1)
        assert (deg == 0).sum() > 0

    def test_many_components(self):
        g = kronecker_g500(10, 8.0, seed=1)
        assert _components(g) > 10

    def test_invalid_probs(self):
        with pytest.raises(ValueError):
            rmat(4, 4.0, a=0.5, b=0.4, c=0.3)

    def test_reproducible(self):
        assert np.array_equal(rmat(8, 4.0, seed=5).col_idx, rmat(8, 4.0, seed=5).col_idx)


class TestRoads:
    def test_connected(self):
        g = road_mesh(20, 20, keep_prob=0.05, seed=0)
        assert _components(g) == 1

    def test_low_degree(self):
        g = road_mesh(30, 30, keep_prob=0.2, seed=0)
        assert g.degrees().max() <= 4
        assert g.degrees().mean() < 3.2

    def test_zero_keep_prob_still_connected(self):
        g = road_mesh(10, 10, keep_prob=0.0, seed=0)
        assert _components(g) == 1

    def test_long_path(self):
        g = long_path(50)
        assert g.num_edges == 49
        assert _components(g) == 1

    def test_caterpillar(self):
        g = caterpillar(10, 3)
        assert g.num_vertices == 40
        assert _components(g) == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            road_mesh(0, 5)
        with pytest.raises(ValueError):
            road_mesh(5, 5, keep_prob=1.5)
        with pytest.raises(ValueError):
            long_path(0)


class TestWeb:
    def test_ba_connected(self):
        g = preferential_attachment(200, 3, seed=0)
        assert _components(g) == 1

    def test_ba_heavy_tail(self):
        g = preferential_attachment(500, 2, seed=0)
        deg = g.degrees()
        assert deg.max() > 5 * deg.mean()

    def test_ba_invalid(self):
        with pytest.raises(ValueError):
            preferential_attachment(3, 5)

    def test_community_islands_disconnect(self):
        g = community_power_law(400, 8.0, num_islands=4, seed=0)
        assert _components(g) >= 4

    def test_community_reproducible(self):
        a = community_power_law(300, 10.0, seed=7)
        b = community_power_law(300, 10.0, seed=7)
        assert np.array_equal(a.col_idx, b.col_idx)

    def test_community_invalid(self):
        with pytest.raises(ValueError):
            community_power_law(100, 8.0, num_islands=0)
        with pytest.raises(ValueError):
            community_power_law(100, 8.0, locality=2.0)


class TestDelaunay:
    def test_planar_density(self):
        g = delaunay_graph(500, seed=0)
        # Planar: m <= 3n - 6.
        assert g.num_edges <= 3 * g.num_vertices - 6
        assert _components(g) == 1

    def test_minimum_points(self):
        with pytest.raises(ValueError):
            delaunay_graph(2)


class TestSmallWorld:
    def test_pure_lattice_degree(self):
        from repro.generators import small_world

        g = small_world(50, 2, 0.0)
        assert np.all(g.degrees() == 4)
        assert _components(g) == 1

    def test_rewiring_changes_structure(self):
        from repro.generators import small_world

        lattice = small_world(200, 3, 0.0, seed=1)
        rewired = small_world(200, 3, 0.5, seed=1)
        assert not np.array_equal(lattice.col_idx, rewired.col_idx)
        validate_undirected(rewired)

    def test_reproducible(self):
        from repro.generators import small_world

        a = small_world(100, 2, 0.3, seed=5)
        b = small_world(100, 2, 0.3, seed=5)
        assert np.array_equal(a.col_idx, b.col_idx)

    def test_invalid_parameters(self):
        from repro.generators import small_world

        with pytest.raises(ValueError):
            small_world(2, 1, 0.1)
        with pytest.raises(ValueError):
            small_world(10, 5, 0.1)
        with pytest.raises(ValueError):
            small_world(10, 2, 1.5)

    def test_shortcuts_collapse_the_diameter(self):
        """Rewiring is the diameter dial between the road-map and
        random-graph extremes of the suite."""
        from repro.graph.stats import approx_diameter
        from repro.generators import small_world

        lattice = small_world(400, 2, 0.0, seed=2)
        rewired = small_world(400, 2, 0.8, seed=2)
        assert approx_diameter(lattice) == 100  # ring of 400, k=2
        assert approx_diameter(rewired) < 30
