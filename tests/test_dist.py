"""Fault-free distributed merge: correctness against the serial oracle,
round/byte accounting, registry dispatch, and the SimNetwork / Backoff
unit surfaces."""

import numpy as np
import pytest

from repro.core.api import connected_components
from repro.dist import (
    MESSAGE_KINDS,
    Backoff,
    DistConfig,
    Message,
    SimNetwork,
    dist_cc,
    solve_shard_full,
)
from repro.errors import UnknownOptionError
from repro.generators.suite import load
from repro.graph.build import empty_graph, from_edges

# Fast-failure knobs for tests: chaos-free runs never hit a deadline,
# so short timeouts only make real bugs fail fast.
FAST = dict(rpc_timeout=0.05)


def _serial(g):
    return connected_components(g, backend="numpy", full_result=False)


def _graphs():
    return [
        from_edges([(0, 1), (1, 2), (0, 2), (3, 4)], num_vertices=6, name="tri+edge"),
        from_edges([(i, i + 1) for i in range(19)], num_vertices=20, name="path20"),
        from_edges([(0, i) for i in range(1, 12)], num_vertices=12, name="star12"),
        from_edges([], num_vertices=7, name="isolates"),
    ]


class TestCorrectness:
    @pytest.mark.parametrize("hosts", [1, 2, 3, 5])
    def test_bit_identical_to_serial(self, hosts):
        for g in _graphs():
            res = dist_cc(g, hosts=hosts, **FAST)
            np.testing.assert_array_equal(res.labels, _serial(g))
            assert res.backend == "distributed"

    @pytest.mark.parametrize("name", ["rmat16.sym", "internet"])
    def test_suite_tiny(self, name):
        g = load(name, "tiny")
        res = dist_cc(g, hosts=4, **FAST)
        np.testing.assert_array_equal(res.labels, _serial(g))

    @pytest.mark.parametrize("partitioner", ["range", "degree"])
    def test_partitioners(self, partitioner):
        g = load("rmat16.sym", "tiny")
        res = dist_cc(g, hosts=3, partitioner=partitioner, **FAST)
        np.testing.assert_array_equal(res.labels, _serial(g))

    @pytest.mark.parametrize("backend", ["numpy", "fastsv"])
    def test_shard_backends(self, backend):
        g = load("rmat16.sym", "tiny")
        res = dist_cc(g, hosts=3, shard_backend=backend, **FAST)
        np.testing.assert_array_equal(res.labels, _serial(g))

    def test_empty_graph(self):
        g = empty_graph(5)
        res = dist_cc(g, hosts=3, **FAST)
        np.testing.assert_array_equal(res.labels, np.arange(5))

    def test_more_hosts_than_vertices(self):
        g = from_edges([(0, 1)], num_vertices=2)
        res = dist_cc(g, hosts=16, **FAST)
        np.testing.assert_array_equal(res.labels, [0, 0])

    def test_deterministic_across_runs(self):
        g = load("rmat16.sym", "tiny")
        a = dist_cc(g, hosts=4, seed=3, **FAST)
        b = dist_cc(g, hosts=4, seed=3, **FAST)
        np.testing.assert_array_equal(a.labels, b.labels)
        assert a.stats.rounds == b.stats.rounds


class TestStats:
    def test_round_and_byte_accounting(self):
        g = load("rmat16.sym", "tiny")
        res = dist_cc(g, hosts=4, **FAST)
        s = res.stats
        assert s.hosts == 4
        assert s.rounds >= 1
        assert s.bytes_on_wire > 0
        assert s.updates_applied <= s.updates_sent
        assert s.reassignments == 0 and s.dead_hosts == []
        # CCResult.__getattr__ falls through to stats.
        assert res.rounds == s.rounds
        assert res.recovery is None  # clean run: nothing to report

    def test_single_host_no_exchange(self):
        g = load("rmat16.sym", "tiny")
        res = dist_cc(g, hosts=1, **FAST)
        assert res.stats.updates_sent == 0
        np.testing.assert_array_equal(res.labels, _serial(g))

    def test_stats_to_dict_round_trips_json(self):
        import json

        res = dist_cc(from_edges([(0, 1)], num_vertices=3), hosts=2, **FAST)
        d = json.loads(json.dumps(res.stats.to_dict()))
        assert d["hosts"] == 2 and d["rounds"] >= 1


class TestRegistry:
    def test_dispatch(self, triangle_plus_edge):
        res = connected_components(
            triangle_plus_edge, backend="distributed", hosts=3, rpc_timeout=0.05
        )
        np.testing.assert_array_equal(res.labels, _serial(triangle_plus_edge))

    def test_full_result_false(self, triangle_plus_edge):
        labels = connected_components(
            triangle_plus_edge, backend="distributed", hosts=2,
            rpc_timeout=0.05, full_result=False,
        )
        np.testing.assert_array_equal(labels, _serial(triangle_plus_edge))

    def test_unknown_option_rejected(self, triangle_plus_edge):
        with pytest.raises(UnknownOptionError):
            connected_components(
                triangle_plus_edge, backend="distributed", bogus_knob=1
            )


class TestShardSolve:
    def test_full_slice_keeps_all_incident_arcs(self):
        # u < v filtering would lose the (2,1) arc seen from shard [2,4).
        g = from_edges([(1, 2), (2, 3)], num_vertices=4)
        labels, bu, bv = solve_shard_full(g, 2, 4, "numpy")
        assert labels.size == 2
        assert set(zip(bu.tolist(), bv.tolist())) == {(2, 1)}


class TestSimNetwork:
    def test_send_recv_in_order(self):
        net = SimNetwork(2)
        try:
            net.begin_round(1)
            for seq in range(3):
                net.send(Message("update", 0, 1, 1, seq, {"x": seq}))
            got = [net.recv(1, timeout=1.0).payload["x"] for _ in range(3)]
            assert got == [0, 1, 2]
            assert net.recv(1, timeout=0.01) is None
        finally:
            net.close()

    def test_recv_after_close_returns_none(self):
        net = SimNetwork(2)
        net.close()
        assert net.recv(0, timeout=5.0) is None

    def test_stats_and_trace(self):
        net = SimNetwork(2, trace_messages=True)
        try:
            net.begin_round(1)
            net.send(Message("report", 0, 2, 1, 0, {}))
            assert net.stats.sent == 1 and net.stats.delivered == 1
            assert net.stats.bytes_on_wire > 0
            (entry,) = net.trace
            assert entry["kind"] == "report" and entry["fate"] == "delivered"
        finally:
            net.close()

    def test_message_kinds_frozen(self):
        assert MESSAGE_KINDS == ("proceed", "update", "ack", "report", "halt")

    def test_nbytes_counts_arrays(self):
        small = Message("update", 0, 1, 1, 0, {"v": np.arange(2)})
        big = Message("update", 0, 1, 1, 0, {"v": np.arange(200)})
        assert big.nbytes() > small.nbytes() >= 32


class TestBackoff:
    def test_monotone_until_cap(self):
        b = Backoff(base=0.1, factor=2.0, cap=0.5, jitter=0.0, seed=0)
        delays = [b.delay(a) for a in range(5)]
        assert delays == sorted(delays)
        assert delays[0] == pytest.approx(0.1)
        assert max(delays) == pytest.approx(0.5)

    def test_jitter_bounded_and_seeded(self):
        a = Backoff(base=0.1, factor=2.0, cap=2.0, jitter=0.5, seed=7)
        b = Backoff(base=0.1, factor=2.0, cap=2.0, jitter=0.5, seed=7)
        for attempt in range(4):
            d1, d2 = a.delay(attempt), b.delay(attempt)
            assert d1 == d2  # same seed, same schedule
            lo = min(2.0, 0.1 * 2.0**attempt)
            assert lo <= d1 <= lo * 1.5

    def test_for_config_varies_by_host(self):
        cfg = DistConfig(jitter=0.5, seed=11)
        d0 = Backoff.for_config(cfg, who=0).delay(1)
        d1 = Backoff.for_config(cfg, who=1).delay(1)
        assert d0 != d1


class TestConfig:
    def test_effective_round_timeout_default(self):
        cfg = DistConfig(rpc_timeout=0.2)
        assert cfg.effective_round_timeout() == pytest.approx(0.8)
        assert DistConfig(round_timeout=1.5).effective_round_timeout() == 1.5
