"""Tests for the recursive graph-contraction backend (repro.core.contract).

Every labeling is checked bit-for-bit against the serial reference —
the library-wide contract — plus the contraction-specific properties:
the per-level vertex/edge trajectory must shrink, the base-case cutoff
must fall through to the frontier backend, and the observe spans must
carry the recursion's shape.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import connected_components
from repro.core.contract import (
    DEFAULT_BASE_CUTOFF,
    ContractRunStats,
    contract_cc,
)
from repro.core.ecl_cc_serial import ecl_cc_serial
from repro.generators import load
from repro.graph.build import empty_graph, from_edges
from repro.observe import Tracer, use_tracer
from repro.verify import reference_labels
from repro.verify.differential import ablation_configs, differential_check


def _assert_matches_serial(graph):
    labels, stats = contract_cc(graph)
    reference, _ = ecl_cc_serial(graph)
    assert labels.dtype == np.int64
    assert np.array_equal(labels, reference)
    return labels, stats


class TestCorrectness:
    @pytest.mark.parametrize(
        "name",
        [
            "2d-2e20.sym",
            "USA-road-d.NY",
            "delaunay_n24",
            "rmat16.sym",
            "kron_g500-logn21",
            "internet",
        ],
    )
    def test_suite_graphs_match_serial(self, name):
        # base_cutoff=0 forces real contraction levels even at tiny scale.
        graph = load(name, "tiny")
        labels, _ = contract_cc(graph, base_cutoff=0)
        assert np.array_equal(labels, reference_labels(graph))

    def test_small_suite_with_default_options(self):
        graph = load("2d-2e20.sym", "small")
        _assert_matches_serial(graph)

    def test_fixture_graphs(
        self, triangle_plus_edge, path_graph, star_graph, two_cliques
    ):
        for graph in (triangle_plus_edge, path_graph, star_graph, two_cliques):
            labels, _ = contract_cc(graph, base_cutoff=0)
            assert np.array_equal(labels, reference_labels(graph))

    def test_empty_graph(self):
        labels, stats = contract_cc(empty_graph(0))
        assert labels.size == 0
        assert stats.levels == 0

    def test_edgeless_graph(self):
        labels, stats = contract_cc(empty_graph(7))
        assert labels.tolist() == list(range(7))
        assert stats.levels == 0 and stats.base_vertices == 0

    def test_single_edge(self):
        graph = from_edges([(0, 1)], num_vertices=3)
        labels, _ = contract_cc(graph, base_cutoff=0)
        assert labels.tolist() == [0, 0, 2]

    def test_long_chain_contracts(self):
        # A path with permuted vertex ids is the adversarial case: hook
        # merges only local minima's neighborhoods, so the recursion
        # must contract through multiple levels.
        n = 512
        rng = np.random.default_rng(3)
        perm = rng.permutation(n)
        graph = from_edges(
            [(int(perm[i]), int(perm[i + 1])) for i in range(n - 1)]
        )
        labels, stats = contract_cc(graph, base_cutoff=0)
        assert np.array_equal(labels, np.zeros(n, dtype=np.int64))
        assert stats.levels >= 2

    def test_random_graphs_match_serial(self):
        rng = np.random.default_rng(11)
        for _ in range(10):
            n = int(rng.integers(2, 400))
            m = int(rng.integers(0, 4 * n))
            edges = rng.integers(0, n, size=(m, 2))
            graph = from_edges(edges, num_vertices=n)
            labels, _ = contract_cc(graph, base_cutoff=0)
            assert np.array_equal(labels, reference_labels(graph))


class TestOptions:
    def test_invalid_options_raise(self, path_graph):
        with pytest.raises(ValueError, match="base_cutoff"):
            contract_cc(path_graph, base_cutoff=-1)
        with pytest.raises(ValueError, match="max_depth"):
            contract_cc(path_graph, max_depth=0)

    def test_base_cutoff_falls_through_to_frontier(self, two_cliques):
        # Cutoff above n: no level ever runs, the frontier backend
        # answers directly on the original graph.
        labels, stats = contract_cc(two_cliques, base_cutoff=10_000)
        assert stats.levels == 0
        assert stats.base_vertices == two_cliques.num_vertices
        assert np.array_equal(labels, reference_labels(two_cliques))

    def test_max_depth_caps_levels(self):
        n = 256
        rng = np.random.default_rng(5)
        perm = rng.permutation(n)
        graph = from_edges(
            [(int(perm[i]), int(perm[i + 1])) for i in range(n - 1)]
        )
        # The permuted path needs >1 level (see test_long_chain_contracts);
        # capping at 1 must push the remainder into the base case.
        labels, stats = contract_cc(graph, base_cutoff=0, max_depth=1)
        assert stats.levels == 1
        assert stats.base_vertices > 0  # remainder went to the base case
        assert np.array_equal(labels, np.zeros(n, dtype=np.int64))

    def test_default_cutoff_exported(self):
        assert DEFAULT_BASE_CUTOFF > 0


class TestStats:
    def test_level_trajectory_shrinks(self):
        n = 1024
        graph = from_edges([(i, i + 1) for i in range(n - 1)])
        _, stats = contract_cc(graph, base_cutoff=0)
        assert isinstance(stats, ContractRunStats)
        assert stats.levels == len(stats.level_vertices)
        assert stats.levels == len(stats.level_edges)
        # Contraction must shrink the vertex set strictly every level.
        sizes = [n] + stats.level_vertices
        assert all(b < a for a, b in zip(sizes, sizes[1:]))
        assert stats.level_edges[-1] == 0  # recursion bottomed out
        assert stats.base_vertices == 0

    def test_base_case_recorded(self):
        graph = load("rmat16.sym", "tiny")
        _, stats = contract_cc(graph, base_cutoff=64, max_depth=1)
        if stats.base_vertices:
            assert stats.base_edges > 0


class TestObserve:
    def test_span_and_gauges(self):
        graph = load("2d-2e20.sym", "tiny")
        tracer = Tracer()
        with use_tracer(tracer):
            contract_cc(graph, base_cutoff=0)
        spans = tracer.find_spans(name="contract:levels")
        assert len(spans) == 1
        attrs = spans[0].attrs
        assert attrs["levels"] >= 1
        assert len(attrs["level_vertices"]) == attrs["levels"]
        assert len(attrs["level_edges"]) == attrs["levels"]
        gauge_names = {name for _, name, _ in tracer.gauges}
        assert "contract.level_vertices" in gauge_names
        assert "contract.level_edges" in gauge_names


class TestBackendIntegration:
    def test_registered_and_dispatchable(self, two_cliques):
        res = connected_components(two_cliques, backend="contract")
        assert res.backend == "contract"
        assert np.array_equal(res.labels, reference_labels(two_cliques))
        assert isinstance(res.stats, ContractRunStats)

    def test_option_schema_enforced(self, two_cliques):
        from repro.errors import UnknownOptionError

        with pytest.raises(UnknownOptionError, match="contract"):
            connected_components(two_cliques, backend="contract", init="Init3")
        res = connected_components(
            two_cliques, backend="contract", base_cutoff=0, max_depth=8
        )
        assert np.array_equal(res.labels, reference_labels(two_cliques))

    def test_differential_oracle_single_config(self):
        configs = ablation_configs(["contract"])
        assert len(configs) == 1  # no init/jump/fini axes declared
        graph = load("internet", "tiny")
        assert differential_check(graph, configs[0]) is None
