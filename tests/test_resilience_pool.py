"""Worker-context wrapping and the fault seams of the virtual-thread pool."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cpusim.pool import VirtualThreadPool
from repro.cpusim.spec import E5_2687W
from repro.errors import ReproError, WatchdogTimeoutError, WorkerError


class TestWorkerErrorWrapping:
    def test_body_exception_wrapped_with_context(self):
        pool = VirtualThreadPool(E5_2687W)

        def body(start, stop):
            if start >= 8:
                raise RuntimeError("array exploded")

        with pytest.raises(WorkerError) as exc_info:
            pool.parallel_for(32, body, schedule="static", chunk=4,
                              name="hookup")
        err = exc_info.value
        # The message names everything a bare traceback would not.
        for fragment in ("worker", "hookup", "chunk", "[8:12)", E5_2687W.name):
            assert fragment in str(err)
        # And the same context is available structurally.
        assert err.region == "hookup"
        assert err.chunk_index == 2
        assert err.chunk_range == (8, 12)
        assert err.spec == E5_2687W.name
        assert 0 <= err.worker < E5_2687W.num_threads
        assert isinstance(err.__cause__, RuntimeError)

    def test_worker_error_is_repro_error(self):
        pool = VirtualThreadPool(E5_2687W)
        with pytest.raises(ReproError):
            pool.parallel_for(4, lambda s, t: 1 / 0, name="zed")

    def test_watchdog_timeout_not_wrapped(self):
        """A deadline expiry is an attempt-level event, not a worker crash."""
        pool = VirtualThreadPool(E5_2687W)

        def body(start, stop):
            raise WatchdogTimeoutError("deadline blew")

        with pytest.raises(WatchdogTimeoutError):
            pool.parallel_for(4, body, name="slow")


class _ChunkSpy:
    """Scheduler exposing only the on_chunk seam."""

    def __init__(self):
        self.calls = []

    def on_chunk(self, region, index, start, stop):
        self.calls.append((region, index, start, stop))


class TestOnChunkSeam:
    def test_called_before_every_chunk(self):
        spy = _ChunkSpy()
        pool = VirtualThreadPool(E5_2687W, scheduler=spy)
        seen = []
        pool.parallel_for(12, lambda s, t: seen.append((s, t)),
                          schedule="static", chunk=4, name="r")
        assert [c[1] for c in spy.calls] == [0, 1, 2]
        assert all(c[0] == "r" for c in spy.calls)
        assert [(c[2], c[3]) for c in spy.calls] == seen

    def test_on_chunk_exception_wrapped(self):
        class Crasher(_ChunkSpy):
            def on_chunk(self, region, index, start, stop):
                raise RuntimeError("chunk dispatch blew up")

        pool = VirtualThreadPool(E5_2687W, scheduler=Crasher())
        with pytest.raises(WorkerError, match="chunk dispatch blew up"):
            pool.parallel_for(4, lambda s, t: None, name="r")


class TestOmpCheckpointAttach:
    def test_crash_carries_parent_checkpoint(self, two_cliques):
        from repro.baselines.cpu.ecl_cc_omp import ecl_cc_omp
        from repro.resilience import FaultInjector, FaultSpec

        inj = FaultInjector(
            [FaultSpec(kind="worker_crash", backend="omp", where="compute",
                       at=1)],
            backend="omp",
        )
        with pytest.raises(ReproError) as exc_info:
            ecl_cc_omp(two_cliques, scheduler=inj)
        cp = exc_info.value.checkpoint
        n = two_cliques.num_vertices
        assert cp is not None and cp.shape == (n,)
        # Identity-based init means even an early crash leaves a valid
        # in-component checkpoint.
        assert np.all(cp <= np.arange(n))
        assert np.all(cp >= 0)
