"""Unit and property tests for the frontier-shrinking primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.frontier import (
    flatten_active,
    flatten_subset,
    segment_min_hook,
    unique_pairs,
)


def _flatten_reference(parent):
    """Naive fixpoint flatten to compare the optimized paths against."""
    parent = parent.copy()
    while True:
        grandparent = parent[parent]
        if np.array_equal(grandparent, parent):
            return parent
        parent = grandparent


@st.composite
def parent_forests(draw, max_n=64):
    """Random parent arrays with parent[v] <= v: always a valid forest."""
    n = draw(st.integers(min_value=0, max_value=max_n))
    vals = [draw(st.integers(min_value=0, max_value=v)) for v in range(n)]
    return np.asarray(vals, dtype=np.int64)


class TestUniquePairs:
    def test_empty(self):
        e = np.empty(0, dtype=np.int64)
        hi, lo = unique_pairs(e, e, 10)
        assert hi.size == 0 and lo.size == 0

    def test_dedup_and_order(self):
        hi = np.array([5, 3, 5, 3, 5], dtype=np.int64)
        lo = np.array([1, 2, 0, 2, 1], dtype=np.int64)
        out_hi, out_lo = unique_pairs(hi, lo, 6)
        assert out_hi.tolist() == [3, 5, 5]
        assert out_lo.tolist() == [2, 0, 1]

    @given(
        st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 30)), max_size=80
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_set_semantics(self, pairs):
        hi = np.asarray([p[0] for p in pairs], dtype=np.int64)
        lo = np.asarray([p[1] for p in pairs], dtype=np.int64)
        out_hi, out_lo = unique_pairs(hi, lo, 31)
        got = list(zip(out_hi.tolist(), out_lo.tolist()))
        assert got == sorted(set(pairs))

    def test_lexsort_fallback_for_huge_n(self):
        # n past 2**31 exceeds the packed-key bit budget.
        hi = np.array([7, 2, 7, 2], dtype=np.int64)
        lo = np.array([1, 0, 1, 3], dtype=np.int64)
        out_hi, out_lo = unique_pairs(hi, lo, 2**40)
        assert list(zip(out_hi.tolist(), out_lo.tolist())) == [
            (2, 0),
            (2, 3),
            (7, 1),
        ]


class TestSegmentMinHook:
    def test_matches_minimum_at(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            n = int(rng.integers(1, 40))
            m = int(rng.integers(0, 60))
            hi = rng.integers(0, n, size=m).astype(np.int64)
            lo = rng.integers(0, n, size=m).astype(np.int64)
            hi, lo = unique_pairs(hi, lo, n)
            expected = np.arange(n, dtype=np.int64)
            np.minimum.at(expected, hi, lo)
            parent = np.arange(n, dtype=np.int64)
            segment_min_hook(parent, hi, lo)
            assert np.array_equal(parent, expected)

    def test_returns_changed_targets_only(self):
        parent = np.arange(6, dtype=np.int64)
        parent[4] = 0  # already below any contender
        hi = np.array([4, 4, 5], dtype=np.int64)
        lo = np.array([1, 2, 3], dtype=np.int64)
        changed = segment_min_hook(parent, hi, lo)
        assert changed.tolist() == [5]
        assert parent[4] == 0 and parent[5] == 3

    def test_empty(self):
        parent = np.arange(3, dtype=np.int64)
        e = np.empty(0, dtype=np.int64)
        assert segment_min_hook(parent, e, e).size == 0
        assert parent.tolist() == [0, 1, 2]


class TestFlatten:
    @given(parent_forests())
    @settings(max_examples=100, deadline=None)
    def test_flatten_active_matches_reference(self, parent):
        expected = _flatten_reference(parent)
        got = parent.copy()
        flatten_active(got)
        assert np.array_equal(got, expected)

    @given(parent_forests())
    @settings(max_examples=100, deadline=None)
    def test_flatten_subset_full_index_matches_reference(self, parent):
        expected = _flatten_reference(parent)
        got = parent.copy()
        flatten_subset(got, np.arange(parent.size, dtype=np.int64))
        assert np.array_equal(got, expected)

    def test_already_flat_counts_zero_passes(self):
        class Stats:
            doubling_passes = 0

        parent = np.zeros(8, dtype=np.int64)
        stats = Stats()
        flatten_active(parent, stats)
        assert stats.doubling_passes == 0

    def test_long_chain_counts_log_passes(self):
        class Stats:
            doubling_passes = 0

        n = 1024
        parent = np.maximum(np.arange(n, dtype=np.int64) - 1, 0)
        stats = Stats()
        flatten_active(parent, stats)
        assert np.array_equal(parent, np.zeros(n, dtype=np.int64))
        # Pointer doubling: ~log2(n) passes, and only changing ones count.
        assert 1 <= stats.doubling_passes <= 12

    def test_empty(self):
        parent = np.empty(0, dtype=np.int64)
        assert flatten_active(parent).size == 0


class TestDegenerateInputs:
    """Edge cases that the numba ports must survive unchanged.

    Each helper is exercised both through normal dispatch and with the
    compiled tier explicitly suppressed, so whichever tier this test
    session runs under, the degenerate input hits both code paths.
    """

    def test_unique_pairs_empty_frontier(self):
        from repro.core import kernels

        for n in (0, 1, 2**35):  # packed-key and lexsort regimes
            e = np.empty(0, dtype=np.int64)
            with kernels.force_numpy():
                hi, lo = unique_pairs(e, e, n)
            assert hi.size == 0 and lo.size == 0
            hi, lo = unique_pairs(e, e, n)
            assert hi.size == 0 and lo.size == 0

    def test_flatten_subset_empty_idx(self):
        from repro.core import kernels

        parent = np.array([0, 0, 1], dtype=np.int64)
        idx = np.empty(0, dtype=np.int64)

        class Stats:
            doubling_passes = 0

        stats = Stats()
        with kernels.force_numpy():
            flatten_subset(parent, idx, stats)
        flatten_subset(parent, idx, stats)
        assert parent.tolist() == [0, 0, 1]  # untouched
        assert stats.doubling_passes == 0

    def test_flatten_active_already_flat(self):
        from repro.core import kernels

        parent = np.array([0, 0, 0, 3, 3], dtype=np.int64)

        class Stats:
            doubling_passes = 0

        stats = Stats()
        with kernels.force_numpy():
            out = flatten_active(parent.copy(), stats)
            assert out.tolist() == parent.tolist()
        out = flatten_active(parent.copy(), stats)
        assert out.tolist() == parent.tolist()
        assert stats.doubling_passes == 0
