"""Tests for the public connected_components entry point."""

import numpy as np
import pytest

from repro import CSRGraph, connected_components, count_components
from repro.verify import reference_labels
from repro.generators import load


class TestBackends:
    @pytest.mark.parametrize("backend", ["serial", "numpy", "gpu", "omp", "fastsv", "afforest"])
    def test_all_backends_agree(self, backend, triangle_plus_edge):
        labels = connected_components(triangle_plus_edge, backend=backend)
        assert np.array_equal(labels, reference_labels(triangle_plus_edge))

    def test_default_backend(self, two_cliques):
        labels = connected_components(two_cliques)
        assert np.array_equal(labels, reference_labels(two_cliques))

    def test_unknown_backend(self, path_graph):
        with pytest.raises(ValueError, match="unknown backend"):
            connected_components(path_graph, backend="quantum")

    def test_full_result_serial(self, path_graph):
        res = connected_components(
            path_graph, backend="serial", full_result=True, collect_stats=True
        )
        assert res.stats is not None

    def test_full_result_gpu(self, path_graph):
        res = connected_components(path_graph, backend="gpu", full_result=True)
        assert res.total_time_ms > 0
        assert np.array_equal(res.labels, reference_labels(path_graph))

    def test_full_result_omp(self, path_graph):
        res = connected_components(path_graph, backend="omp", full_result=True)
        assert res.modeled_time_s > 0

    def test_fastsv_full_result(self, path_graph):
        res = connected_components(path_graph, backend="fastsv", full_result=True)
        assert res.stats.iterations >= 1
        assert np.array_equal(res.labels, reference_labels(path_graph))

    def test_afforest_full_result(self, path_graph):
        res = connected_components(path_graph, backend="afforest", full_result=True)
        assert res.total_time_ms > 0

    def test_backend_options_forwarded(self, two_cliques):
        labels = connected_components(two_cliques, backend="serial", init="Init1")
        assert np.array_equal(labels, reference_labels(two_cliques))


class TestCountComponents:
    def test_counts(self, triangle_plus_edge):
        assert count_components(triangle_plus_edge) == 3

    def test_empty(self):
        from repro.graph.build import empty_graph

        assert count_components(empty_graph(0)) == 0

    def test_gpu_backend(self):
        g = load("as-skitter", "tiny")
        assert count_components(g, backend="gpu") == count_components(g, backend="numpy")


class TestPackageSurface:
    def test_version(self):
        import repro

        assert repro.__version__

    def test_reexports(self):
        import repro

        assert repro.CSRGraph is CSRGraph
