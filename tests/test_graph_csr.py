"""Unit tests for the CSR graph container."""

import numpy as np
import pytest

from repro.errors import GraphValidationError
from repro.graph.build import from_edges
from repro.graph.csr import CSRGraph


class TestConstruction:
    def test_valid_graph(self, triangle_plus_edge):
        g = triangle_plus_edge
        assert g.num_vertices == 6
        assert g.num_edges == 4
        assert g.num_arcs == 8

    def test_arrays_are_immutable(self, triangle_plus_edge):
        with pytest.raises(ValueError):
            triangle_plus_edge.row_ptr[0] = 1
        with pytest.raises(ValueError):
            triangle_plus_edge.col_idx[0] = 1

    def test_rejects_bad_row_ptr_start(self):
        with pytest.raises(GraphValidationError):
            CSRGraph(np.array([1, 2]), np.array([0, 0]))

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(GraphValidationError):
            CSRGraph(np.array([0, 3]), np.array([0]))

    def test_rejects_decreasing_row_ptr(self):
        with pytest.raises(GraphValidationError):
            CSRGraph(np.array([0, 2, 1, 3]), np.array([0, 1, 2]))

    def test_rejects_out_of_range_neighbor(self):
        with pytest.raises(GraphValidationError):
            CSRGraph(np.array([0, 1]), np.array([5]))

    def test_rejects_negative_neighbor(self):
        with pytest.raises(GraphValidationError):
            CSRGraph(np.array([0, 1]), np.array([-1]))

    def test_empty_row_ptr_rejected(self):
        with pytest.raises(GraphValidationError):
            CSRGraph(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))

    def test_zero_vertex_graph(self):
        g = CSRGraph(np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.int64))
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_dtype_coercion(self):
        g = CSRGraph(np.array([0, 1, 2], dtype=np.int32), np.array([1, 0], dtype=np.int16))
        assert g.row_ptr.dtype == np.int64
        assert g.col_idx.dtype == np.int64


class TestAccessors:
    def test_neighbors(self, triangle_plus_edge):
        assert sorted(triangle_plus_edge.neighbors(0).tolist()) == [1, 2]
        assert sorted(triangle_plus_edge.neighbors(3).tolist()) == [4]
        assert triangle_plus_edge.neighbors(5).size == 0

    def test_degree(self, triangle_plus_edge):
        assert triangle_plus_edge.degree(0) == 2
        assert triangle_plus_edge.degree(5) == 0

    def test_degrees_matches_per_vertex(self, two_cliques):
        g = two_cliques
        deg = g.degrees()
        for v in range(g.num_vertices):
            assert deg[v] == g.degree(v)

    def test_edges_iterates_once_per_undirected_edge(self, triangle_plus_edge):
        edges = list(triangle_plus_edge.edges())
        assert edges == [(0, 1), (0, 2), (1, 2), (3, 4)]
        assert all(u < v for u, v in edges)

    def test_arc_array_covers_all_arcs(self, star_graph):
        src, dst = star_graph.arc_array()
        assert src.size == star_graph.num_arcs
        # Every arc must have its reverse.
        pairs = set(zip(src.tolist(), dst.tolist()))
        assert all((b, a) in pairs for a, b in pairs)

    def test_edge_array_is_upper_triangle(self, two_cliques):
        u, v = two_cliques.edge_array()
        assert u.size == two_cliques.num_edges
        assert np.all(u < v)

    def test_with_name(self, path_graph):
        g2 = path_graph.with_name("renamed")
        assert g2.name == "renamed"
        assert g2.row_ptr is path_graph.row_ptr  # arrays shared


class TestDerivedArrayCache:
    def test_computed_once(self, two_cliques, monkeypatch):
        import repro.graph.csr as csr_mod

        calls = {"repeat": 0}
        real_repeat = np.repeat

        def counting_repeat(*args, **kwargs):
            calls["repeat"] += 1
            return real_repeat(*args, **kwargs)

        monkeypatch.setattr(csr_mod.np, "repeat", counting_repeat)
        two_cliques.arc_array()
        two_cliques.arc_array()
        two_cliques.edge_array()  # built on top of the cached arc arrays
        assert calls["repeat"] == 1

    def test_same_objects_returned(self, two_cliques):
        assert two_cliques.degrees() is two_cliques.degrees()
        assert two_cliques.arc_array()[0] is two_cliques.arc_array()[0]
        assert two_cliques.edge_array()[0] is two_cliques.edge_array()[0]

    def test_derived_arrays_are_read_only(self, two_cliques):
        deg = two_cliques.degrees()
        src, dst = two_cliques.arc_array()
        u, v = two_cliques.edge_array()
        for arr in (deg, src, dst, u, v):
            assert not arr.flags.writeable
            with pytest.raises(ValueError):
                arr[0] = 99

    def test_cache_survives_with_name(self, two_cliques):
        u, v = two_cliques.edge_array()
        renamed = two_cliques.with_name("renamed")
        u2, v2 = renamed.edge_array()
        assert u2 is u and v2 is v
        assert renamed.degrees() is two_cliques.degrees()

    def test_arc_dst_is_col_idx_view(self, two_cliques):
        _, dst = two_cliques.arc_array()
        assert dst is two_cliques.col_idx


class TestAdjacencyOrder:
    def test_neighbors_sorted_from_builder(self):
        g = from_edges([(2, 0), (2, 1), (2, 3)])
        assert g.neighbors(2).tolist() == [0, 1, 3]

    def test_has_sorted_adjacency_from_builder(self):
        g = from_edges([(2, 0), (2, 1), (2, 3)])
        assert g.has_sorted_adjacency()

    def test_has_sorted_adjacency_detects_unsorted(self):
        # Hand-built CSR with a descending row; still structurally valid.
        g = CSRGraph(
            np.array([0, 1, 3, 4], dtype=np.int64),
            np.array([1, 0, 2, 1], dtype=np.int64),
        )
        assert g.has_sorted_adjacency()
        g2 = CSRGraph(
            np.array([0, 2, 3, 4], dtype=np.int64),
            np.array([2, 1, 2, 0], dtype=np.int64),
        )
        assert not g2.has_sorted_adjacency()
