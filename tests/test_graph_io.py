"""Round-trip and format tests for graph file I/O."""

import io

import pytest

from repro.errors import GraphFormatError
from repro.graph.build import from_edges
from repro.graph.io import (
    load_csr_npz,
    read_auto,
    read_dimacs,
    read_edge_list,
    read_matrix_market,
    save_csr_npz,
    write_dimacs,
    write_edge_list,
    write_matrix_market,
)


@pytest.fixture
def sample():
    return from_edges([(0, 1), (1, 2), (3, 4)], num_vertices=6, name="sample")


def _same_structure(a, b):
    return (
        a.num_vertices == b.num_vertices
        and a.row_ptr.tolist() == b.row_ptr.tolist()
        and a.col_idx.tolist() == b.col_idx.tolist()
    )


class TestEdgeList:
    def test_round_trip_memory(self, sample):
        buf = io.StringIO()
        write_edge_list(sample, buf)
        buf.seek(0)
        g = read_edge_list(buf, num_vertices=6)
        assert _same_structure(sample, g)

    def test_round_trip_file(self, sample, tmp_path):
        p = tmp_path / "g.el"
        write_edge_list(sample, p)
        g = read_edge_list(p, num_vertices=6)
        assert _same_structure(sample, g)

    def test_comments_skipped(self):
        g = read_edge_list(io.StringIO("# snap header\n% other\n0 1\n1 2\n"))
        assert g.num_edges == 2

    def test_malformed_line_raises(self):
        with pytest.raises(GraphFormatError):
            read_edge_list(io.StringIO("0 x\n"))

    def test_single_column_rejected(self):
        with pytest.raises(GraphFormatError):
            read_edge_list(io.StringIO("0\n1\n"))

    def test_extra_columns_ignored(self):
        g = read_edge_list(io.StringIO("0 1 17\n1 2 3\n"))
        assert g.num_edges == 2


class TestDimacs:
    def test_round_trip(self, sample, tmp_path):
        p = tmp_path / "g.gr"
        write_dimacs(sample, p)
        g = read_dimacs(p)
        assert _same_structure(sample, g)

    def test_one_based_conversion(self):
        g = read_dimacs(io.StringIO("p sp 3 2\na 1 2\na 2 3\n"))
        assert g.num_vertices == 3
        assert (0, 1) in list(g.edges())

    def test_comments_and_e_lines(self):
        g = read_dimacs(io.StringIO("c hello\np sp 2 1\ne 1 2\n"))
        assert g.num_edges == 1

    def test_bad_problem_line(self):
        with pytest.raises(GraphFormatError):
            read_dimacs(io.StringIO("p sp 3\n"))

    def test_unknown_line_type(self):
        with pytest.raises(GraphFormatError):
            read_dimacs(io.StringIO("p sp 2 1\nx 1 2\n"))

    def test_declared_vertex_count_respected(self):
        g = read_dimacs(io.StringIO("p sp 10 1\na 1 2\n"))
        assert g.num_vertices == 10


class TestMatrixMarket:
    def test_round_trip(self, sample, tmp_path):
        p = tmp_path / "g.mtx"
        write_matrix_market(sample, p)
        g = read_matrix_market(p)
        assert _same_structure(sample, g)

    def test_missing_header_rejected(self):
        with pytest.raises(GraphFormatError):
            read_matrix_market(io.StringIO("1 1 0\n"))

    def test_general_matrix_symmetrized(self):
        text = "%%MatrixMarket matrix coordinate pattern general\n3 3 2\n1 2\n2 3\n"
        g = read_matrix_market(io.StringIO(text))
        assert g.num_edges == 2
        assert 0 in g.neighbors(1)

    def test_bad_size_line(self):
        with pytest.raises(GraphFormatError):
            read_matrix_market(io.StringIO("%%MatrixMarket matrix\n3 3\n"))


class TestNpz:
    def test_round_trip(self, sample, tmp_path):
        p = tmp_path / "g.npz"
        save_csr_npz(sample, p)
        g = load_csr_npz(p)
        assert _same_structure(sample, g)
        assert g.name == "sample"


class TestReadAuto:
    @pytest.mark.parametrize("ext,writer", [
        (".gr", write_dimacs),
        (".mtx", write_matrix_market),
        (".el", write_edge_list),
    ])
    def test_dispatch(self, sample, tmp_path, ext, writer):
        p = tmp_path / f"g{ext}"
        writer(sample, p)
        g = read_auto(p)
        assert g.num_edges == sample.num_edges

    def test_npz_dispatch(self, sample, tmp_path):
        p = tmp_path / "g.npz"
        save_csr_npz(sample, p)
        assert read_auto(p).num_edges == sample.num_edges
