"""Tests for the CPU baselines (parallel virtual-thread and serial)."""

import numpy as np
import pytest

from repro.baselines.cpu import (
    CPU_PARALLEL_BASELINES,
    CPU_SERIAL_BASELINES,
    UnsupportedGraphError,
    boost_cc,
    crono_cc,
    ecl_cc_omp,
    galois_async_cc,
    galois_serial_cc,
    igraph_cc,
    lemon_cc,
    ligra_bfscc,
    ligra_comp,
    multistep_cc,
    ndhybrid_cc,
    serial_union_find_cc,
)
from repro.core.labels import canonicalize
from repro.verify import reference_labels
from repro.cpusim import X5690
from repro.generators import load, load_suite
from repro.graph.build import empty_graph, from_edges

PARALLEL = dict(CPU_PARALLEL_BASELINES, **{"ECL-CC_OMP": ecl_cc_omp})


class TestParallelCorrectness:
    @pytest.mark.parametrize("name", sorted(PARALLEL))
    def test_known_graph(self, name, triangle_plus_edge):
        res = PARALLEL[name](triangle_plus_edge)
        assert np.array_equal(
            canonicalize(res.labels), reference_labels(triangle_plus_edge)
        )

    @pytest.mark.parametrize("name", sorted(PARALLEL))
    def test_isolated(self, name, isolated_graph):
        res = PARALLEL[name](isolated_graph)
        assert canonicalize(res.labels).tolist() == [0, 1, 2, 3, 4]

    @pytest.mark.parametrize("name", sorted(PARALLEL))
    def test_tiny_suite_subset(self, name):
        for g in load_suite("tiny", names=["rmat16.sym", "europe_osm", "cit-Patents"]):
            try:
                res = PARALLEL[name](g)
            except UnsupportedGraphError:
                pytest.skip(f"{name} rejects {g.name} (dense-matrix cap)")
            assert np.array_equal(
                canonicalize(res.labels), reference_labels(g)
            ), g.name

    @pytest.mark.parametrize("name", sorted(PARALLEL))
    def test_alternate_spec(self, name):
        g = load("internet", "tiny")
        res = PARALLEL[name](g, spec=X5690)
        assert np.array_equal(canonicalize(res.labels), reference_labels(g))

    @pytest.mark.parametrize("name", sorted(PARALLEL))
    def test_modeled_time_positive(self, name, two_cliques):
        res = PARALLEL[name](two_cliques)
        assert res.modeled_time_s > 0
        assert res.modeled_time_ms == pytest.approx(res.modeled_time_s * 1e3)


class TestEclOmp:
    def test_regions_are_three_phases(self, two_cliques):
        res = ecl_cc_omp(two_cliques)
        assert [r.name for r in res.regions] == ["init", "compute", "finalize"]

    def test_variants(self, path_graph):
        for init in ("Init1", "Init2", "Init3"):
            for jump in ("none", "single", "full", "halving"):
                res = ecl_cc_omp(path_graph, init=init, jump=jump)
                assert np.array_equal(res.labels, reference_labels(path_graph))

    def test_cas_injection_retry_path(self, two_cliques):
        """Inject CAS failures to force Fig. 6's repeat branch."""
        from repro.unionfind.concurrent import compare_and_swap

        failures = {"count": 0}

        def flaky_cas(parent, idx, expected, desired):
            if failures["count"] < 5 and parent[idx] == expected and expected != desired:
                failures["count"] += 1
                # Simulate another thread winning the race with the very
                # same hook: the CAS observes the new value and must retry.
                parent[idx] = desired
                return desired
            return compare_and_swap(parent, idx, expected, desired)

        res = ecl_cc_omp(two_cliques, init="Init1", cas=flaky_cas)
        assert np.array_equal(
            canonicalize(res.labels), reference_labels(two_cliques)
        )
        assert failures["count"] > 0


class TestCrono:
    def test_rejects_high_degree(self):
        g = from_edges([(0, i) for i in range(1, 200)])  # star, dmax=199
        with pytest.raises(UnsupportedGraphError):
            crono_cc(g, matrix_cap=1000)

    def test_accepts_with_big_cap(self):
        g = from_edges([(0, i) for i in range(1, 50)])
        res = crono_cc(g, matrix_cap=10_000)
        assert np.all(canonicalize(res.labels) == 0)

    def test_iterates_on_path(self, path_graph):
        res = crono_cc(path_graph)
        assert res.iterations >= 2


class TestLigra:
    def test_comp_counts_iterations(self, path_graph):
        res = ligra_comp(path_graph)
        # A 10-vertex path needs several propagation rounds.
        assert res.iterations >= 3

    def test_bfscc_one_bfs_per_component(self, triangle_plus_edge):
        res = ligra_bfscc(triangle_plus_edge)
        assert res.iterations == 3  # {0,1,2}, {3,4}, {5}

    def test_bfscc_empty(self):
        res = ligra_bfscc(empty_graph(0))
        assert res.labels.size == 0


class TestMultistep:
    def test_giant_component_claimed_by_bfs(self, two_cliques):
        res = multistep_cc(two_cliques)
        assert np.array_equal(canonicalize(res.labels), reference_labels(two_cliques))

    def test_serial_tail_on_small_leftover(self):
        # Giant clique + one small separate edge: leftover below cutoff.
        edges = [(i, j) for i in range(20) for j in range(i + 1, 20)]
        edges.append((20, 21))
        g = from_edges(edges)
        res = multistep_cc(g)
        assert np.array_equal(canonicalize(res.labels), reference_labels(g))

    def test_empty(self):
        res = multistep_cc(empty_graph(0))
        assert res.labels.size == 0


class TestNdHybrid:
    def test_contraction_terminates(self):
        g = load("citationCiteseer", "tiny")
        res = ndhybrid_cc(g)
        assert res.iterations < 64
        assert np.array_equal(canonicalize(res.labels), reference_labels(g))

    def test_seed_changes_decomposition_not_answer(self):
        g = load("as-skitter", "tiny")
        a = ndhybrid_cc(g, seed=1)
        b = ndhybrid_cc(g, seed=2)
        assert np.array_equal(canonicalize(a.labels), canonicalize(b.labels))


class TestGalois:
    def test_async_lock_overhead_structures(self, two_cliques):
        res = galois_async_cc(two_cliques)
        assert np.array_equal(canonicalize(res.labels), reference_labels(two_cliques))

    def test_serial_returns_time(self, path_graph):
        labels, dt = galois_serial_cc(path_graph)
        assert dt > 0
        assert np.array_equal(canonicalize(labels), reference_labels(path_graph))


class TestSerialBaselines:
    @pytest.mark.parametrize("name", sorted(CPU_SERIAL_BASELINES))
    def test_known_graph(self, name, triangle_plus_edge):
        labels, dt = CPU_SERIAL_BASELINES[name](triangle_plus_edge)
        assert dt >= 0
        assert np.array_equal(
            canonicalize(labels), reference_labels(triangle_plus_edge)
        )

    @pytest.mark.parametrize(
        "fn", [boost_cc, igraph_cc, lemon_cc, serial_union_find_cc, galois_serial_cc]
    )
    def test_tiny_suite_subset(self, fn):
        for g in load_suite("tiny", names=["kron_g500-logn21", "USA-road-d.NY"]):
            labels, _ = fn(g)
            assert np.array_equal(canonicalize(labels), reference_labels(g)), g.name

    @pytest.mark.parametrize(
        "fn", [boost_cc, igraph_cc, lemon_cc, serial_union_find_cc]
    )
    def test_empty(self, fn):
        labels, _ = fn(empty_graph(0))
        assert labels.size == 0

    def test_min_id_convention(self, two_cliques):
        # All serial codes emit canonical min-id labels directly.
        for fn in (boost_cc, igraph_cc, lemon_cc, serial_union_find_cc):
            labels, _ = fn(two_cliques)
            assert np.array_equal(labels, reference_labels(two_cliques))
