"""Tests for graph statistics (Table 2 rows) and semantic validation."""

import numpy as np
import pytest

from repro.errors import GraphValidationError
from repro.graph.build import empty_graph, from_edges
from repro.graph.csr import CSRGraph
from repro.graph.stats import graph_stats, stats_table
from repro.graph.validate import (
    check_no_duplicate_arcs,
    check_no_self_loops,
    check_symmetric,
    is_valid_undirected,
    validate_undirected,
)


class TestStats:
    def test_triangle_plus_edge(self, triangle_plus_edge):
        s = graph_stats(triangle_plus_edge)
        assert s.num_vertices == 6
        assert s.num_arcs == 8
        assert s.dmin == 0
        assert s.dmax == 2
        assert s.num_components == 3

    def test_single_component_path(self, path_graph):
        s = graph_stats(path_graph)
        assert s.num_components == 1
        assert s.dmin == 1
        assert s.dmax == 2

    def test_empty(self):
        s = graph_stats(empty_graph(0))
        assert s.num_vertices == 0
        assert s.num_components == 0

    def test_isolated_vertices_count_as_components(self, isolated_graph):
        assert graph_stats(isolated_graph).num_components == 5

    def test_average_degree(self, star_graph):
        s = graph_stats(star_graph)
        assert s.davg == pytest.approx(16 / 9)

    def test_stats_table_renders(self, triangle_plus_edge, path_graph):
        text = stats_table([triangle_plus_edge, path_graph])
        assert "tri+e" in text
        assert "path10" in text
        assert "CCs" in text


class TestValidate:
    def test_clean_graph_passes(self, two_cliques):
        validate_undirected(two_cliques)
        assert is_valid_undirected(two_cliques)

    def _raw(self, row_ptr, col_idx):
        return CSRGraph(np.array(row_ptr), np.array(col_idx))

    def test_self_loop_detected(self):
        g = self._raw([0, 1, 2], [0, 1])  # 0->0 and 1->1
        with pytest.raises(GraphValidationError):
            check_no_self_loops(g)
        assert not is_valid_undirected(g)

    def test_duplicate_arc_detected(self):
        g = self._raw([0, 2, 3], [1, 1, 0])
        with pytest.raises(GraphValidationError):
            check_no_duplicate_arcs(g)

    def test_asymmetry_detected(self):
        g = self._raw([0, 1, 1], [1])  # 0->1 without 1->0
        with pytest.raises(GraphValidationError):
            check_symmetric(g)
        assert not is_valid_undirected(g)

    def test_empty_graph_valid(self):
        validate_undirected(empty_graph(3))


class TestApproxDiameter:
    def test_path_exact(self, path_graph):
        from repro.graph import approx_diameter

        assert approx_diameter(path_graph) == 9

    def test_star(self, star_graph):
        from repro.graph import approx_diameter

        assert approx_diameter(star_graph) == 2

    def test_clique(self, two_cliques):
        from repro.graph import approx_diameter

        assert approx_diameter(two_cliques, source=0) == 1

    def test_road_mesh_diameter_dominates_power_law(self):
        from repro.generators import load
        from repro.graph import approx_diameter

        road = approx_diameter(load("europe_osm", "small"))
        web = approx_diameter(load("uk-2002", "small"))
        assert road > 5 * web

    def test_invalid(self, path_graph):
        from repro.graph import approx_diameter
        from repro.graph.build import empty_graph

        with pytest.raises(ValueError):
            approx_diameter(empty_graph(0))
        with pytest.raises(ValueError):
            approx_diameter(path_graph, source=99)
        with pytest.raises(ValueError):
            approx_diameter(path_graph, sweeps=0)
