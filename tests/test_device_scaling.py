"""Edge cases of DeviceSpec.scaled and scaled_device."""

from __future__ import annotations

import pytest

from repro.gpusim.device import K40, TITAN_X, DeviceSpec, scaled_device


class TestScaled:
    @pytest.mark.parametrize("factor", [0, -1, -0.5])
    def test_nonpositive_factor_rejected(self, factor):
        with pytest.raises(ValueError, match="must be positive"):
            TITAN_X.scaled(factor)

    def test_huge_factor_keeps_16_lines(self):
        tiny = TITAN_X.scaled(1e12)
        assert tiny.l2_bytes == 16 * TITAN_X.line_bytes

    def test_unit_factor_is_identity_capacity(self):
        assert TITAN_X.scaled(1.0).l2_bytes == TITAN_X.l2_bytes

    def test_l1_never_shrinks(self):
        assert TITAN_X.scaled(1000).l1_bytes == TITAN_X.l1_bytes

    def test_fractional_factor_grows_l2(self):
        grown = K40.scaled(0.5)
        assert grown.l2_bytes == K40.l2_bytes * 2

    def test_name_records_factor(self):
        assert "÷1000" in TITAN_X.scaled(1000).name

    def test_scaled_spec_still_valid(self):
        spec = TITAN_X.scaled(7.3)
        assert spec.warps_per_block == TITAN_X.warps_per_block
        assert spec.block_threads % spec.warp_size == 0


class TestScaledDevice:
    def test_tiny_graph_clamps_to_floor(self):
        spec = scaled_device(TITAN_X, graph_arcs=1)
        assert spec.l2_bytes == 16 * TITAN_X.line_bytes

    def test_zero_arcs_uses_full_paper_factor(self):
        assert (
            scaled_device(TITAN_X, graph_arcs=0).l2_bytes
            == TITAN_X.scaled(100_000_000).l2_bytes
        )

    def test_graph_larger_than_paper_not_grown(self):
        spec = scaled_device(TITAN_X, graph_arcs=10**10)
        assert spec.l2_bytes == TITAN_X.l2_bytes  # factor clamped to 1.0

    def test_proportional_scaling(self):
        spec = scaled_device(TITAN_X, graph_arcs=1_000_000, paper_arcs=100_000_000)
        assert spec.l2_bytes == max(
            16 * TITAN_X.line_bytes, TITAN_X.l2_bytes // 100
        )


class TestDeviceSpecValidation:
    def test_block_threads_must_be_warp_multiple(self):
        with pytest.raises(ValueError, match="multiple of warp_size"):
            DeviceSpec(
                name="bad", num_sms=1, warp_size=32, block_threads=48,
                max_resident_blocks=1, l1_bytes=1024, l2_bytes=4096,
                line_bytes=128, clock_ghz=1.0,
            )

    def test_dimensions_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            DeviceSpec(
                name="bad", num_sms=0, warp_size=32, block_threads=32,
                max_resident_blocks=1, l1_bytes=1024, l2_bytes=4096,
                line_bytes=128, clock_ghz=1.0,
            )

    def test_line_bytes_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            DeviceSpec(
                name="bad", num_sms=1, warp_size=32, block_threads=32,
                max_resident_blocks=1, l1_bytes=1024, l2_bytes=4096,
                line_bytes=96, clock_ghz=1.0,
            )

    def test_warps_per_block_rounding(self):
        spec = DeviceSpec(
            name="w", num_sms=1, warp_size=32, block_threads=96,
            max_resident_blocks=1, l1_bytes=1024, l2_bytes=4096,
            line_bytes=128, clock_ghz=1.0,
        )
        assert spec.warps_per_block == 3
