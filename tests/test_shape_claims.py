"""Regression tests pinning the paper's headline *shape* claims.

These run the experiment pipeline at tiny scale on a representative
input subset — fast enough for CI, strong enough that a change breaking
a reproduced ordering fails loudly.
"""

import pytest

from repro.experiments import run_experiment

SUBSET = ["rmat16.sym", "europe_osm", "2d-2e20.sym", "kron_g500-logn21"]
ARGS = dict(scale="tiny", names=SUBSET, repeats=1)


def _geomeans(report) -> dict:
    return dict(zip(report.columns[1:], report.geomean_row[1:]))


class TestGpuComparisonShape:
    def test_ecl_fastest_geomean_titanx(self):
        gm = _geomeans(run_experiment("fig11", **ARGS))
        # Every baseline's geomean ratio to ECL-CC exceeds 1.
        assert all(v > 1.0 for v in gm.values()), gm

    def test_groute_is_closest_competitor(self):
        gm = _geomeans(run_experiment("fig11", **ARGS))
        assert gm["Groute"] == min(gm.values()), gm

    def test_gunrock_is_slowest(self):
        gm = _geomeans(run_experiment("fig11", **ARGS))
        assert gm["Gunrock"] == max(gm.values()), gm

    def test_k40_ordering_matches(self):
        gm = _geomeans(run_experiment("fig12", **ARGS))
        assert all(v > 1.0 for v in gm.values()), gm
        assert gm["Groute"] == min(gm.values()), gm


class TestAblationShape:
    def test_jump3_is_worst_pointer_jumping(self):
        gm = _geomeans(run_experiment("fig08", **ARGS))
        assert gm["Jump3"] == max(gm.values()), gm
        assert gm["Jump4 (ECL-CC)"] == 1.0

    def test_init2_slower_than_init3(self):
        gm = _geomeans(run_experiment("fig07", **ARGS))
        assert gm["Init2"] > 1.0, gm

    def test_fini2_is_worst_finalization(self):
        gm = _geomeans(run_experiment("fig09", **ARGS))
        assert gm["Fini2"] >= max(gm.values()) - 1e-9, gm

    def test_compute_phase_dominates(self):
        rep = run_experiment("fig10", **ARGS)
        for row in rep.rows:
            compute = row[2] + row[3] + row[4]
            assert compute > 50.0, row  # paper: 84.5% on average

    def test_road_graphs_have_longest_paths(self):
        rep = run_experiment("table4", **ARGS)
        by_name = {row[0]: row[1] for row in rep.rows}
        assert by_name["europe_osm"] > by_name["rmat16.sym"]
        assert by_name["europe_osm"] > by_name["kron_g500-logn21"]


class TestCpuComparisonShape:
    def test_comp_collapses_on_road_networks(self):
        rep = run_experiment("fig13", **ARGS)
        col = rep.columns.index("Ligra+ Comp")
        by_name = {row[0]: row[col] for row in rep.rows}
        # Label propagation pays diameter-many rounds on europe_osm.
        assert by_name["europe_osm"] > 3 * by_name["rmat16.sym"]
