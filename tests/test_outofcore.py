"""The out-of-core streamer: correctness, budget enforcement, spill
lifecycle, observability, and crash resume."""

import os

import numpy as np
import pytest

import repro
from repro.core.api import connected_components
from repro.errors import (
    MemoryBudgetError,
    SpillChecksumError,
    WorkerCrashError,
)
from repro.graph.build import empty_graph, from_edges
from repro.graph.spill import SpilledGraph
from repro.observe import Tracer
from repro.outofcore import (
    MERGE_WORK_FACTOR,
    MIN_CHUNK_PAIRS,
    PAIR_BYTES,
    RESUME_NAME,
    OocoreRunStats,
    ResidentMeter,
    active_spill_dirs,
    auto_shard_count,
    min_feasible_budget,
    oocore_cc,
    shard_charge_bytes,
)
from repro.resilience import FaultPlan, FaultSpec


def _graph(n=120, m=360, seed=5, name="g"):
    rng = np.random.default_rng(seed)
    return from_edges(rng.integers(0, n, size=(m, 2)), num_vertices=n, name=name)


def _serial(g):
    return connected_components(g, backend="serial", full_result=False)


# ----------------------------------------------------------------------
# Correctness
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", [1, 2, 4, 7])
def test_oocore_matches_serial(shards):
    g = _graph()
    labels, stats, _ = oocore_cc(g, shards=shards)
    assert np.array_equal(labels, _serial(g))
    assert stats.num_shards == shards


def test_oocore_fixture_graphs(
    triangle_plus_edge, path_graph, star_graph, isolated_graph, two_cliques
):
    for g in (triangle_plus_edge, path_graph, star_graph, isolated_graph,
              two_cliques):
        labels, _, _ = oocore_cc(g, shards=2)
        assert np.array_equal(labels, _serial(g)), g.name


def test_oocore_degenerate_graphs():
    labels, stats, _ = oocore_cc(empty_graph(0))
    assert labels.size == 0 and stats.num_shards == 0
    labels, _, _ = oocore_cc(empty_graph(1))
    assert np.array_equal(labels, [0])


def test_oocore_via_backend_registry():
    g = _graph()
    res = connected_components(g, backend="oocore", shards=3)
    assert res.backend == "oocore"
    assert np.array_equal(res.labels, _serial(g))
    assert isinstance(res.stats, OocoreRunStats)
    assert res.stats.merge_passes >= 1
    assert res.recovery is None  # no faults, no retries


def test_oocore_registry_rejects_unknown_option():
    from repro.errors import UnknownOptionError

    with pytest.raises(UnknownOptionError):
        connected_components(_graph(), backend="oocore", bogus=1)


@pytest.mark.parametrize("shard_backend", ["numpy", "serial", "fastsv"])
def test_oocore_shard_backends(shard_backend):
    g = _graph()
    labels, stats, _ = oocore_cc(g, shards=3, shard_backend=shard_backend)
    assert np.array_equal(labels, _serial(g))
    assert stats.shard_backend == shard_backend


def test_oocore_from_spilled_graph(tmp_path):
    g = _graph()
    sp = g.spill(tmp_path, 4)
    labels, stats, _ = oocore_cc(sp)
    assert np.array_equal(labels, _serial(g))
    # The caller's spill survives; the run's droppings do not.
    assert (tmp_path / "MANIFEST.json").is_file()
    assert not (tmp_path / RESUME_NAME).exists()
    assert not any(p.name.startswith("boundary_") for p in tmp_path.iterdir())
    assert SpilledGraph.open(tmp_path).num_arcs == g.num_arcs


# ----------------------------------------------------------------------
# Budget accounting
# ----------------------------------------------------------------------
def test_resident_meter_charges_and_peak():
    meter = ResidentMeter(budget=1000)
    meter.charge("a", 400)
    with meter.charged("b", 500):
        assert meter.resident == 900
    assert meter.resident == 400
    assert meter.peak == 900
    assert meter.headroom() == 600
    with pytest.raises(MemoryBudgetError) as exc:
        meter.charge("c", 700)
    assert exc.value.required == 1100 and exc.value.budget == 1000
    assert meter.resident == 400  # failed charge not recorded


def test_resident_meter_unbudgeted_tracks_peak():
    meter = ResidentMeter()
    meter.charge("a", 10**9)
    assert meter.peak == 10**9
    assert meter.headroom() is None


def test_budget_too_small_raises_before_work():
    g = _graph()
    with pytest.raises(MemoryBudgetError, match="cannot stream"):
        oocore_cc(g, memory_budget=g.num_vertices * 8)  # labels alone fill it
    assert active_spill_dirs() == []


def test_min_feasible_budget_is_tight():
    """The advertised floor runs; meaningfully below it cannot."""
    g = _graph()
    floor = min_feasible_budget(g)
    labels, stats, _ = oocore_cc(g, memory_budget=floor)
    assert np.array_equal(labels, _serial(g))
    assert stats.peak_resident_bytes <= floor
    chunk = MIN_CHUNK_PAIRS * PAIR_BYTES * MERGE_WORK_FACTOR
    with pytest.raises(MemoryBudgetError):
        oocore_cc(g, memory_budget=g.num_vertices * 8 + chunk)


def test_auto_shard_count_scales_with_budget():
    g = _graph(400, 1600)
    generous = auto_shard_count(g, (g.num_vertices + 1 + g.num_arcs) * 8 * 8)
    tight = auto_shard_count(g, min_feasible_budget(g))
    assert tight > generous
    assert auto_shard_count(g, None) == 4


def test_peak_stays_under_budget_with_csr_over_budget():
    """The headline property: solve a graph whose CSR footprint exceeds
    the budget, with the *charged* peak under the budget throughout."""
    g = _graph(500, 4000, seed=11)
    csr_bytes = (g.num_vertices + 1 + g.num_arcs) * 8
    budget = csr_bytes // 3
    assert budget > min_feasible_budget(g)
    labels, stats, _ = oocore_cc(g, memory_budget=budget)
    assert np.array_equal(labels, _serial(g))
    assert stats.csr_bytes == csr_bytes
    assert stats.peak_resident_bytes <= budget
    assert stats.ceiling > 1.0


def test_shard_charge_formula():
    assert shard_charge_bytes(11, 100) == (11 + 600) * 8


def test_explicit_shards_with_infeasible_budget_fail_loudly():
    """An explicit shard count that cannot fit the budget raises from
    the meter instead of silently over-allocating."""
    g = _graph(300, 2400, seed=2)
    with pytest.raises(MemoryBudgetError):
        oocore_cc(g, shards=1, memory_budget=min_feasible_budget(g))
    assert active_spill_dirs() == []


# ----------------------------------------------------------------------
# Spill lifecycle
# ----------------------------------------------------------------------
def test_temp_spill_dir_removed_after_run():
    g = _graph()
    _, stats, _ = oocore_cc(g, shards=2)
    assert stats.spill_dir == ""  # removed, nothing to point at
    assert active_spill_dirs() == []


def test_keep_spill_preserves_directory(tmp_path):
    g = _graph()
    d = tmp_path / "spill"
    labels, stats, _ = oocore_cc(g, spill_dir=d, keep_spill=True, shards=3)
    assert stats.kept_spill and stats.spill_dir == str(d)
    assert active_spill_dirs() == []  # handed to the caller, not leaked
    sp = SpilledGraph.open(d)
    assert sp.num_shards == 3
    # Only the spill proper remains: no merge droppings.
    assert not (d / RESUME_NAME).exists()
    assert not any(p.name.startswith("boundary_") for p in d.iterdir())
    # And it is a complete, reusable spill.
    labels2, _, _ = oocore_cc(sp)
    assert np.array_equal(labels2, labels)


def test_explicit_spill_dir_cleaned_without_keep(tmp_path):
    g = _graph()
    d = tmp_path / "nested" / "spill"
    oocore_cc(g, spill_dir=d, shards=2)
    assert not d.exists()
    assert active_spill_dirs() == []


def test_explicit_spill_dir_preserves_foreign_files(tmp_path):
    """Cleanup of a caller-named directory only removes spill artifacts."""
    d = tmp_path / "spill"
    d.mkdir()
    (d / "notes.txt").write_text("mine")
    oocore_cc(_graph(), spill_dir=d, shards=2)
    assert (d / "notes.txt").read_text() == "mine"
    assert not (d / "MANIFEST.json").exists()


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------
def test_oocore_spans_and_gauge():
    g = _graph()
    with Tracer() as t:
        oocore_cc(g, shards=3)
    assert len(t.find_spans(name="oocore:spill")) == 1
    shard_spans = t.find_spans(name="oocore:shard")
    assert len(shard_spans) == 3
    assert [s.attrs["shard"] for s in shard_spans] == [0, 1, 2]
    assert all(s.attrs["boundary"] >= 0 for s in shard_spans)
    merge_spans = t.find_spans(name="oocore:merge-pass")
    assert merge_spans and merge_spans[-1].attrs["hooks"] == 0
    peaks = [v for _, name, v in t.gauges if name == "oocore.peak_resident_bytes"]
    assert len(peaks) == 1 and peaks[0] > 0
    assert t.counters["oocore.shards"] == 3


def test_stats_to_dict_round():
    g = _graph()
    _, stats, _ = oocore_cc(g, shards=2, memory_budget=min_feasible_budget(g) * 4)
    d = stats.to_dict()
    assert d["num_shards"] == stats.num_shards
    assert d["peak_resident_bytes"] == stats.peak_resident_bytes
    assert d["ceiling"] == stats.ceiling
    assert len(stats.shard_ms) == stats.num_shards


# ----------------------------------------------------------------------
# Crash + resume (the happy-path halves; adversarial cases live in
# test_outofcore_faults.py)
# ----------------------------------------------------------------------
def test_resume_after_worker_crash(tmp_path):
    g = _graph()
    d = tmp_path / "spill"
    plan = FaultPlan([FaultSpec(kind="worker_crash", backend="oocore", at=2)])
    with pytest.raises(WorkerCrashError):
        oocore_cc(g, shards=4, spill_dir=d, fault_plan=plan)
    # The crash leaves resumable state behind...
    assert (d / RESUME_NAME).is_file()
    labels, stats, _ = oocore_cc(g, shards=4, spill_dir=d, resume=True)
    assert np.array_equal(labels, _serial(g))
    assert stats.resumed and stats.skipped_shards == 2
    assert not d.exists()  # ...and the resumed run cleans up
    assert active_spill_dirs() == []


def test_auto_resume_recovers_in_process():
    g = _graph()
    plan = FaultPlan([FaultSpec(kind="worker_crash", backend="oocore", at=1)])
    labels, stats, recovery = oocore_cc(
        g, shards=4, fault_plan=plan, auto_resume=1
    )
    assert np.array_equal(labels, _serial(g))
    assert stats.resumed and stats.skipped_shards == 1
    assert recovery.retries == 1
    assert [a.status for a in recovery.attempts] == ["fault", "ok"]
    assert recovery.attempts[0].faults[0].kind == "worker_crash"
    assert active_spill_dirs() == []


def test_resume_is_bit_identical_to_fresh_run(tmp_path):
    g = _graph(200, 800, seed=9)
    fresh, _, _ = oocore_cc(g, shards=4)
    d = tmp_path / "spill"
    plan = FaultPlan([FaultSpec(kind="worker_crash", backend="oocore", at=3)])
    with pytest.raises(WorkerCrashError):
        oocore_cc(g, shards=4, spill_dir=d, fault_plan=plan)
    resumed, _, _ = oocore_cc(g, shards=4, spill_dir=d, resume=True)
    assert np.array_equal(resumed, fresh)


def test_resume_without_state_runs_fresh(tmp_path):
    g = _graph()
    labels, stats, _ = oocore_cc(g, shards=2, spill_dir=tmp_path / "d",
                                 resume=True)
    assert np.array_equal(labels, _serial(g))
    assert not stats.resumed


def test_top_level_exports():
    assert repro.oocore_cc is oocore_cc
    assert repro.SpilledGraph is SpilledGraph
    assert "oocore" in repro.BACKENDS
