"""Tests for the spanning-forest extension (Kruskal + GPU Borůvka)."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.extensions import (
    SpanningForest,
    boruvka_msf_gpu,
    forest_weight,
    kruskal_msf,
)


def _nx_msf_weight(u, v, w, n):
    g = nx.Graph()
    g.add_nodes_from(range(n))
    for i in range(len(u)):
        a, b = int(u[i]), int(v[i])
        if g.has_edge(a, b):
            if w[i] < g[a][b]["weight"]:
                g[a][b]["weight"] = float(w[i])
        else:
            g.add_edge(a, b, weight=float(w[i]))
    forest = nx.minimum_spanning_edges(g, data=True)
    return sum(d["weight"] for _, _, d in forest)


SQUARE = (  # 4-cycle with a chord
    np.array([0, 1, 2, 3, 0]),
    np.array([1, 2, 3, 0, 2]),
    np.array([1.0, 2.0, 3.0, 4.0, 0.5]),
)


class TestKruskal:
    def test_square_with_chord(self):
        u, v, w = SQUARE
        forest = kruskal_msf(u, v, w, 4)
        assert forest.total_weight == pytest.approx(0.5 + 1.0 + 3.0)
        assert forest.num_trees == 1
        assert forest.num_edges == 3
        assert 4 in forest.edge_indices  # the 0.5 chord

    def test_forest_on_disconnected(self):
        u = np.array([0, 2])
        v = np.array([1, 3])
        w = np.array([5.0, 7.0])
        forest = kruskal_msf(u, v, w, 5)  # vertex 4 isolated
        assert forest.num_trees == 3
        assert forest.num_edges == 2
        assert forest.total_weight == 12.0

    @pytest.mark.parametrize("compression", ["none", "single", "full", "halving"])
    def test_compression_variants_agree(self, compression):
        u, v, w = SQUARE
        forest = kruskal_msf(u, v, w, 4, compression=compression)
        assert forest.total_weight == pytest.approx(4.5)

    def test_empty(self):
        forest = kruskal_msf(np.empty(0), np.empty(0), np.empty(0), 3)
        assert forest.num_edges == 0
        assert forest.num_trees == 3

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            kruskal_msf(np.array([0]), np.array([9]), np.array([1.0]), 3)
        with pytest.raises(ValueError):
            kruskal_msf(np.array([0, 1]), np.array([1]), np.array([1.0]), 3)
        with pytest.raises(ValueError):
            kruskal_msf(*SQUARE, 4, compression="warp")

    def test_forest_weight_helper(self):
        u, v, w = SQUARE
        forest = kruskal_msf(u, v, w, 4)
        assert forest_weight(w, forest) == pytest.approx(forest.total_weight)


class TestBoruvkaGpu:
    def test_matches_kruskal_on_square(self):
        u, v, w = SQUARE
        k = kruskal_msf(u, v, w, 4)
        b, gpu = boruvka_msf_gpu(u, v, w, 4)
        assert np.array_equal(k.edge_indices, b.edge_indices)
        assert b.total_weight == pytest.approx(k.total_weight)
        assert len(gpu.launches) >= 3

    def test_empty(self):
        forest, _ = boruvka_msf_gpu(np.empty(0), np.empty(0), np.empty(0), 4)
        assert forest.num_edges == 0
        assert forest.num_trees == 4

    @pytest.mark.parametrize("seed", [None, 1, 2])
    def test_random_graph_matches_networkx_weight(self, seed):
        rng = np.random.default_rng(3)
        n, m = 40, 120
        u = rng.integers(0, n, size=m)
        v = rng.integers(0, n, size=m)
        keep = u != v
        u, v = u[keep], v[keep]
        w = rng.random(u.size)
        forest, _ = boruvka_msf_gpu(u, v, w, n, seed=seed)
        assert forest.total_weight == pytest.approx(_nx_msf_weight(u, v, w, n))

    def test_equal_weights_tie_broken_by_index(self):
        u = np.array([0, 0, 1])
        v = np.array([1, 1, 2])
        w = np.array([1.0, 1.0, 1.0])  # parallel edges 0/1 tie
        k = kruskal_msf(u, v, w, 3)
        b, _ = boruvka_msf_gpu(u, v, w, 3)
        assert np.array_equal(k.edge_indices, b.edge_indices)
        assert k.edge_indices.tolist() == [0, 2]


@given(
    st.integers(min_value=2, max_value=16).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(
                    st.integers(0, n - 1),
                    st.integers(0, n - 1),
                    st.integers(1, 50),
                ),
                max_size=40,
            ),
        )
    )
)
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_kruskal_and_boruvka_agree(args):
    n, triples = args
    triples = [(a, b, c) for a, b, c in triples if a != b]
    u = np.array([t[0] for t in triples], dtype=np.int64)
    v = np.array([t[1] for t in triples], dtype=np.int64)
    w = np.array([t[2] for t in triples], dtype=np.float64)
    k = kruskal_msf(u, v, w, n)
    b, _ = boruvka_msf_gpu(u, v, w, n)
    assert np.array_equal(k.edge_indices, b.edge_indices)
    assert b.num_trees == k.num_trees
    # Optimality against networkx.
    assert k.total_weight == pytest.approx(_nx_msf_weight(u, v, w, n))
