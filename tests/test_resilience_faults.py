"""Unit tests for the fault-injection plane (plans, injector, watchdog)."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.errors import (
    DeviceOOMError,
    KernelAbortError,
    SimulationError,
    WatchdogTimeoutError,
)
from repro.resilience import FaultInjector, FaultPlan, FaultSpec, Watchdog
from repro.resilience.faults import FaultEvent


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="gamma_ray")

    def test_negative_trigger_rejected(self):
        with pytest.raises(ValueError, match="must be >= 0"):
            FaultSpec(kind="hang", at=-1)

    def test_matches_backend_and_attempt(self):
        f = FaultSpec(kind="kernel_abort", backend="gpu", attempt=1)
        assert f.matches("gpu", 1)
        assert not f.matches("gpu", 0)
        assert not f.matches("omp", 1)

    def test_wildcards(self):
        f = FaultSpec(kind="hang", backend="*", attempt=-1)
        for backend in ("gpu", "omp"):
            for attempt in (0, 1, 5):
                assert f.matches(backend, attempt)

    def test_dict_round_trip(self):
        f = FaultSpec(kind="corrupt_store", backend="omp", attempt=2,
                      where="finalize", at=7, array="parent", value=3)
        assert FaultSpec.from_dict(f.to_dict()) == f


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(
            faults=[
                FaultSpec(kind="oom", where="parent"),
                FaultSpec(kind="hang", backend="omp", at=3),
            ],
            seed=42,
            name="unit",
        )
        back = FaultPlan.from_json(plan.to_json())
        assert back == plan
        assert back.to_dict()["schema"].startswith("repro.resilience/")

    def test_save_load(self, tmp_path):
        plan = FaultPlan(faults=[FaultSpec(kind="worker_crash", backend="omp")])
        path = plan.save(tmp_path / "plan.json")
        assert FaultPlan.load(path) == plan

    def test_random_is_deterministic(self):
        a = FaultPlan.random(123)
        b = FaultPlan.random(123)
        assert a == b
        assert a != FaultPlan.random(124)
        assert a.seed == 123

    def test_random_respects_substrate(self):
        plan = FaultPlan.random(5, num_faults=20)
        for f in plan.faults:
            if f.backend == "omp":
                assert f.kind in ("worker_crash", "hang")

    def test_for_backend_filters(self):
        plan = FaultPlan(faults=[
            FaultSpec(kind="oom", backend="gpu", attempt=0),
            FaultSpec(kind="hang", backend="omp", attempt=-1),
        ])
        assert len(plan.for_backend("gpu", 0)) == 1
        assert len(plan.for_backend("gpu", 1)) == 0
        assert len(plan.for_backend("omp", 9)) == 1

    def test_truthiness(self):
        assert not FaultPlan()
        assert FaultPlan(faults=[FaultSpec(kind="hang")])

    def test_event_round_trip(self):
        ev = FaultEvent(kind="oom", backend="gpu", attempt=1,
                        where="parent", trigger=0, detail="x")
        assert FaultEvent.from_dict(ev.to_dict()) == ev


class TestWatchdog:
    def test_unbounded_never_fires(self):
        wd = Watchdog(None)
        wd.poll()  # no deadline, no raise
        assert not wd.expired()

    def test_deadline_fires(self):
        wd = Watchdog(0.005)
        time.sleep(0.02)
        assert wd.expired()
        with pytest.raises(WatchdogTimeoutError, match="deadline"):
            wd.poll()

    def test_restart_rearms(self):
        wd = Watchdog(0.05)
        time.sleep(0.06)
        wd.restart()
        wd.poll()  # fresh clock: no raise

    def test_invalid_deadline(self):
        with pytest.raises(ValueError):
            Watchdog(0.0)


class _FakeArray:
    name = "parent"

    def __len__(self):
        return 10


class TestFaultInjector:
    def test_round_robin_matches_default(self):
        inj = FaultInjector([], backend="gpu")
        inj.begin_launch("compute1")
        keys = [10, 11, 12]
        assert [inj.pick(keys) for _ in range(5)] == [0, 1, 2, 0, 1]
        inj.begin_launch("compute2")  # position resets per launch
        assert inj.pick(keys) == 0

    def test_kernel_abort_fires_at_trigger(self):
        spec = FaultSpec(kind="kernel_abort", where="compute", at=2)
        inj = FaultInjector([spec], backend="gpu")
        inj.begin_launch("compute1")
        inj.pick([0, 1])
        inj.pick([0, 1])
        with pytest.raises(KernelAbortError, match="injected kernel abort"):
            inj.pick([0, 1])
        assert [e.kind for e in inj.events] == ["kernel_abort"]
        assert inj.events[0].where == "compute1"
        assert inj.events[0].trigger == 2

    def test_where_prefix_gates_trigger(self):
        spec = FaultSpec(kind="kernel_abort", where="finalize", at=0)
        inj = FaultInjector([spec], backend="gpu")
        inj.begin_launch("compute1")
        for _ in range(10):
            inj.pick([0, 1])  # wrong launch: never fires
        inj.begin_launch("finalize")
        with pytest.raises(KernelAbortError):
            inj.pick([0, 1])

    def test_lost_warp_never_scheduled_again(self):
        spec = FaultSpec(kind="lost_warp", where="compute", at=0)
        inj = FaultInjector([spec], backend="gpu")
        inj.begin_launch("compute1")
        keys = [7, 8, 9]
        picks = [inj.pick(keys) for _ in range(6)]
        # Victim is warp 7 (position 0 at the trigger); it is skipped
        # ever after.
        assert keys[picks[0]] != 7
        assert all(keys[p] != 7 for p in picks)
        assert inj.events[0].kind == "lost_warp"

    def test_starved_kernel_hits_watchdog(self):
        spec = FaultSpec(kind="lost_warp", where="compute", at=0)
        inj = FaultInjector([spec], backend="gpu", watchdog=Watchdog(0.01))
        inj.begin_launch("compute1")
        with pytest.raises(WatchdogTimeoutError):
            for _ in range(100):
                inj.pick([5])  # the only ready warp is the victim

    def test_hang_without_watchdog_refuses(self):
        spec = FaultSpec(kind="hang", where="compute", at=0)
        inj = FaultInjector([spec], backend="gpu")
        with pytest.raises(SimulationError, match="no attempt deadline"):
            inj.begin_launch("compute1")
            inj.pick([0])

    def test_corrupt_store_changes_value(self):
        spec = FaultSpec(kind="corrupt_store", where="compute",
                         array="parent", at=1)
        inj = FaultInjector([spec], backend="gpu")
        inj.begin_launch("compute1")
        arr = _FakeArray()
        assert inj.transform_store(arr, 4, 2) == 2  # trigger 0: untouched
        bad = inj.transform_store(arr, 4, 2)        # trigger 1: corrupted
        assert bad != 2 and 0 <= bad < len(arr)
        assert inj.transform_store(arr, 4, 2) == 2  # one-shot
        assert inj.events[0].kind == "corrupt_store"

    def test_corrupt_store_explicit_value_avoids_identity(self):
        spec = FaultSpec(kind="corrupt_store", where="c", array="parent",
                         at=0, value=2)
        inj = FaultInjector([spec], backend="gpu")
        inj.begin_launch("c")
        # The requested corrupt value equals the true store: bump it so
        # the store is still actually wrong.
        assert inj.transform_store(_FakeArray(), 0, 2) != 2

    def test_oom_matches_allocation_prefix(self):
        spec = FaultSpec(kind="oom", where="parent", at=0)
        inj = FaultInjector([spec], backend="gpu")
        inj.on_alloc("row_ptr", 100)  # no match
        inj.on_alloc("col_idx", 100)
        with pytest.raises(DeviceOOMError, match="injected device OOM"):
            inj.on_alloc("parent", 800)
        assert inj.events[0].where == "parent"

    def test_worker_crash_counts_chunks(self):
        spec = FaultSpec(kind="worker_crash", backend="omp",
                         where="compute", at=1)
        inj = FaultInjector([spec], backend="omp")
        inj.begin_launch("region:compute")
        inj.on_chunk("compute", 0, 0, 8)
        from repro.errors import WorkerCrashError

        with pytest.raises(WorkerCrashError):
            inj.on_chunk("compute", 1, 8, 16)

    def test_pool_hang_counts_chunks_not_picks(self):
        spec = FaultSpec(kind="hang", backend="omp", where="compute", at=0)
        inj = FaultInjector([spec], backend="omp", watchdog=Watchdog(0.01))
        inj.begin_launch("region:compute")
        for _ in range(5):
            inj.pick([0, 1, 2])  # chunk-order picks do not trigger
        with pytest.raises(WatchdogTimeoutError):
            inj.on_chunk("compute", 0, 0, 8)

    def test_query_drop_never_drops(self):
        inj = FaultInjector([], backend="gpu")
        assert inj.query_drop("parent", 3) is False


class TestInjectorNeutrality:
    """A fault-free injector must not change what a backend computes."""

    def test_gpu_schedule_unchanged(self, two_cliques):
        from repro.core.ecl_cc_gpu import ecl_cc_gpu

        plain = ecl_cc_gpu(two_cliques)
        injected = ecl_cc_gpu(
            two_cliques, scheduler=FaultInjector([], backend="gpu")
        )
        assert np.array_equal(plain.labels, injected.labels)

    def test_omp_schedule_unchanged(self, two_cliques):
        from repro.baselines.cpu.ecl_cc_omp import ecl_cc_omp

        plain = ecl_cc_omp(two_cliques)
        injected = ecl_cc_omp(
            two_cliques, scheduler=FaultInjector([], backend="omp")
        )
        assert np.array_equal(plain.labels, injected.labels)
