"""Adversarial fault wall for the external-memory path.

The invariant under every injected fault: the run either recovers to
labels bit-identical to the serial oracle, or fails loudly with a
checksum/format error — a damaged spill can never produce silently
wrong labels.
"""

import numpy as np
import pytest

from repro.core.api import connected_components
from repro.errors import (
    MergeCrashError,
    SpillChecksumError,
    SpillTruncatedError,
    WorkerCrashError,
)
from repro.graph.build import from_edges
from repro.graph.spill import SpilledGraph
from repro.outofcore import PARENT_CKPT_NAME, RESUME_NAME, active_spill_dirs, oocore_cc
from repro.resilience import FAULT_KINDS, OOCORE_FAULT_KINDS, FaultPlan, FaultSpec


def _graph(n=120, m=360, seed=5):
    rng = np.random.default_rng(seed)
    return from_edges(rng.integers(0, n, size=(m, 2)), num_vertices=n)


def _serial(g):
    return connected_components(g, backend="serial", full_result=False)


def _spec(kind, at=1, **kw):
    return FaultPlan([FaultSpec(kind=kind, backend="oocore", at=at, **kw)])


# ----------------------------------------------------------------------
# Spill damage with the source graph available: deterministic repair
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", ["spill_corrupt", "spill_truncate"])
@pytest.mark.parametrize("where", ["colidx", "rowptr"])
def test_spill_damage_repaired_by_respill(kind, where):
    g = _graph()
    labels, stats, recovery = oocore_cc(
        g, shards=4, fault_plan=_spec(kind, at=1, where=where)
    )
    assert np.array_equal(labels, _serial(g))
    assert stats.respilled_shards == 1
    assert recovery.faults[0].kind == kind
    assert active_spill_dirs() == []


def test_respill_restores_manifest_checksums(tmp_path):
    """Repair is deterministic: the re-spilled bytes match the original
    manifest checksums exactly, so the kept spill verifies clean."""
    g = _graph()
    d = tmp_path / "spill"
    _, stats, _ = oocore_cc(
        g, shards=4, spill_dir=d, keep_spill=True,
        fault_plan=_spec("spill_corrupt", at=2),
    )
    assert stats.respilled_shards == 1
    sp = SpilledGraph.open(d)
    for i in range(sp.num_shards):
        sp.verify_shard(i)  # would raise on any mismatch


def test_multiple_damaged_shards_all_repaired():
    g = _graph()
    plan = FaultPlan([
        FaultSpec(kind="spill_corrupt", backend="oocore", at=0),
        FaultSpec(kind="spill_truncate", backend="oocore", at=3),
    ])
    labels, stats, recovery = oocore_cc(g, shards=4, fault_plan=plan)
    assert np.array_equal(labels, _serial(g))
    assert stats.respilled_shards == 2
    assert {ev.kind for ev in recovery.faults} == {
        "spill_corrupt", "spill_truncate",
    }


# ----------------------------------------------------------------------
# Spill damage without a source graph: loud failure, never wrong labels
# ----------------------------------------------------------------------
def test_corrupt_spilled_source_fails_loudly(tmp_path):
    g = _graph()
    sp = g.spill(tmp_path, 4)
    victim = tmp_path / sp.shard_entry(2).colidx_file
    size = victim.stat().st_size
    with open(victim, "r+b") as f:
        f.seek(size // 2)
        byte = f.read(1)
        f.seek(size // 2)
        f.write(bytes([byte[0] ^ 0xFF]))
    with pytest.raises(SpillChecksumError, match="checksum mismatch"):
        oocore_cc(SpilledGraph(tmp_path, sp.manifest))


def test_truncated_spilled_source_fails_loudly(tmp_path):
    g = _graph()
    sp = g.spill(tmp_path, 4)
    victim = tmp_path / sp.shard_entry(1).colidx_file
    with open(victim, "r+b") as f:
        f.truncate(victim.stat().st_size - 8)
    # Either layer may catch it — reopening fails the size check;
    # streaming a stale handle fails the per-shard verification.
    with pytest.raises(SpillTruncatedError):
        oocore_cc(SpilledGraph.open(tmp_path))


# ----------------------------------------------------------------------
# Crashes: worker_crash mid-stream, merge_crash mid-merge
# ----------------------------------------------------------------------
def test_merge_crash_then_manual_resume(tmp_path):
    g = _graph()
    d = tmp_path / "spill"
    with pytest.raises(MergeCrashError):
        oocore_cc(g, shards=4, spill_dir=d, fault_plan=_spec("merge_crash", at=0))
    # All shards completed before the merge crashed.
    assert (d / RESUME_NAME).is_file()
    labels, stats, _ = oocore_cc(g, shards=4, spill_dir=d, resume=True)
    assert np.array_equal(labels, _serial(g))
    assert stats.skipped_shards == 4


def test_merge_crash_auto_resume():
    g = _graph()
    labels, stats, recovery = oocore_cc(
        g, shards=4, fault_plan=_spec("merge_crash", at=0), auto_resume=1
    )
    assert np.array_equal(labels, _serial(g))
    assert recovery.retries == 1
    assert recovery.attempts[0].error_kind == "merge_crash"
    assert active_spill_dirs() == []


def test_mid_merge_crash_resumes_from_checkpointed_pass(tmp_path):
    """Crashing *between* merge passes resumes from the checkpointed
    parent array and still reaches the oracle fixpoint."""
    g = _graph(200, 800, seed=13)
    d = tmp_path / "spill"
    with pytest.raises(MergeCrashError):
        oocore_cc(g, shards=6, spill_dir=d, fault_plan=_spec("merge_crash", at=1))
    labels, stats, _ = oocore_cc(g, shards=6, spill_dir=d, resume=True)
    assert np.array_equal(labels, _serial(g))


def test_persistent_crash_exhausts_auto_resume():
    g = _graph()
    plan = FaultPlan([
        FaultSpec(kind="worker_crash", backend="oocore", at=0, attempt=-1)
    ])
    with pytest.raises(WorkerCrashError):
        oocore_cc(g, shards=4, fault_plan=plan, auto_resume=2)
    assert active_spill_dirs() == []  # exhausted temp dir not leaked


def test_crash_faults_do_not_arm_for_other_backends():
    g = _graph()
    plan = FaultPlan([FaultSpec(kind="worker_crash", backend="sharded", at=0)])
    labels, _, recovery = oocore_cc(g, shards=2, fault_plan=plan)
    assert np.array_equal(labels, _serial(g))
    assert recovery.faults == []


# ----------------------------------------------------------------------
# Resume-state integrity
# ----------------------------------------------------------------------
def test_corrupt_parent_checkpoint_rejected(tmp_path):
    g = _graph()
    d = tmp_path / "spill"
    with pytest.raises(WorkerCrashError):
        oocore_cc(g, shards=4, spill_dir=d, fault_plan=_spec("worker_crash", at=2))
    ckpt = d / PARENT_CKPT_NAME
    data = bytearray(ckpt.read_bytes())
    data[8] ^= 0xFF
    ckpt.write_bytes(bytes(data))
    with pytest.raises(SpillChecksumError, match="refusing to resume"):
        oocore_cc(g, shards=4, spill_dir=d, resume=True)


def test_corrupt_boundary_file_rejected(tmp_path):
    g = _graph(200, 800, seed=3)
    d = tmp_path / "spill"
    with pytest.raises(MergeCrashError):
        oocore_cc(g, shards=4, spill_dir=d, fault_plan=_spec("merge_crash", at=0))
    victim = next(p for p in sorted(d.iterdir())
                  if p.name.startswith("boundary_") and p.stat().st_size)
    data = bytearray(victim.read_bytes())
    data[0] ^= 0xFF
    victim.write_bytes(bytes(data))
    with pytest.raises(SpillChecksumError, match="refusing to resume"):
        oocore_cc(g, shards=4, spill_dir=d, resume=True)


# ----------------------------------------------------------------------
# FaultPlan plumbing for the new kinds
# ----------------------------------------------------------------------
def test_new_kinds_registered():
    for kind in ("spill_corrupt", "spill_truncate", "merge_crash"):
        assert kind in FAULT_KINDS
        assert kind in OOCORE_FAULT_KINDS
    assert "worker_crash" in OOCORE_FAULT_KINDS


def test_fault_plan_json_roundtrip_with_new_kinds():
    plan = FaultPlan([
        FaultSpec(kind="spill_corrupt", backend="oocore", at=1, where="rowptr"),
        FaultSpec(kind="spill_truncate", backend="oocore", at=0),
        FaultSpec(kind="merge_crash", backend="oocore", at=2, attempt=-1),
    ], seed=7, name="oocore-chaos")
    back = FaultPlan.from_json(plan.to_json())
    assert back.faults == plan.faults
    assert back.seed == 7 and back.name == "oocore-chaos"


def test_random_plan_for_oocore_backend_samples_oocore_kinds():
    plan = FaultPlan.random(123, backends=("oocore",), num_faults=8)
    assert plan.faults
    for spec in plan.faults:
        assert spec.backend == "oocore"
        assert spec.kind in OOCORE_FAULT_KINDS
        assert spec.at < 8  # shard/pass ordinals, not warp counts


def test_random_plans_are_deterministic():
    a = FaultPlan.random(55, backends=("oocore", "gpu"))
    b = FaultPlan.random(55, backends=("oocore", "gpu"))
    assert a.faults == b.faults
