"""The fuzz driver end-to-end: clean pass, mutant catching, minimization,
counterexample replay, and the CLI."""

import json

import numpy as np
import pytest

from repro.graph.build import from_edges
from repro.verify import (
    Counterexample,
    DiffConfig,
    ablation_configs,
    ddmin_edges,
    differential_check,
    fuzz,
    minimize_graph,
    replay,
    shrink_trace,
    trial_graph,
)
from repro.verify.__main__ import main as verify_main
from repro.verify.broken import (
    g_hook_noretry,
    register_broken_backends,
    unregister_broken_backends,
)
from repro.verify.schedulers import RandomScheduler, ReplayScheduler


@pytest.fixture
def broken_registry():
    names = register_broken_backends()
    yield names
    unregister_broken_backends()


class TestAblationConfigs:
    def test_covers_full_cross_product(self):
        cfgs = ablation_configs(["gpu"])
        assert len(cfgs) == 3 * 4 * 3  # Init1-3 x Jump1-4 x Fini1-3
        assert len(set(cfgs)) == len(cfgs)

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            ablation_configs(["gpu", "typo"])

    def test_every_registered_backend_included(self):
        cfgs = ablation_configs()
        backends = {c.backend for c in cfgs}
        for expected in ("serial", "numpy", "numpy-dense", "gpu", "omp",
                        "fastsv", "afforest"):
            assert expected in backends


class TestTrialGraphs:
    def test_deterministic(self):
        for seed in (0, 7, 123456):
            a, b = trial_graph(seed), trial_graph(seed)
            assert np.array_equal(a.row_ptr, b.row_ptr)
            assert np.array_equal(a.col_idx, b.col_idx)

    def test_pool_diversity_and_bounds(self):
        names = set()
        for seed in range(200):
            g = trial_graph(seed)
            assert g.num_vertices <= 260
            names.add(g.name)
        assert len(names) >= 6  # degenerate + structured + random families


class TestFuzzClean:
    def test_small_fuzz_passes(self):
        report = fuzz(trials=40, seed=1)
        assert report.ok, report.summary()
        assert report.trials == 40
        assert report.by_kind.get("differential", 0) > 0
        assert report.decisions > 0

    def test_seconds_budget_stops(self):
        report = fuzz(seconds=0.5, seed=2)
        assert report.ok, report.summary()
        assert report.elapsed_s < 30  # generous: one trial may overshoot


class TestBrokenVariantCaught:
    def test_caught_and_minimized_within_budget(self, broken_registry):
        """Acceptance: the non-retrying hook falls within the same budget
        used by CI, with a minimized replayable counterexample."""
        report = fuzz(trials=500, seed=0, backends=broken_registry)
        cx = report.counterexample
        assert cx is not None, "broken hook survived 500 trials"
        assert cx.minimized
        assert cx.num_vertices <= 30  # shrunk far below the pool sizes
        # The artifact replays: same failure, no fuzzing loop needed.
        assert replay(cx) is not None
        # And survives a JSON round-trip (the CI artifact path).
        again = Counterexample.from_json(cx.to_json())
        assert replay(again) is not None

    def test_broken_hook_is_schedule_dependent(self, broken_registry):
        # Friendly round-robin (no scheduler) can stay correct on a tiny
        # graph: the defect needs contention, which the fuzzer supplies.
        g = from_edges([(0, 1), (1, 2)], num_vertices=3, name="tiny")
        msg = differential_check(g, DiffConfig(broken_registry[0]))
        assert msg is None


class TestMinimizer:
    def test_ddmin_isolates_the_culprit_edge(self):
        edges = [(i, i + 1) for i in range(10)] + [(2, 7)]

        def fails(graph):
            src, dst = graph.arc_array()
            return bool(np.any((src == 2) & (dst == 7)))

        small = ddmin_edges(edges, 11, fails)
        assert small == [(2, 7)]

    def test_minimize_graph_compacts_vertices(self):
        edges = [(40, 41), (41, 42), (3, 4)]

        def fails(graph):
            # Fails whenever some component has >= 3 vertices.
            from repro.verify import reference_labels

            labels = reference_labels(graph)
            if labels.size == 0:
                return False
            _, counts = np.unique(labels, return_counts=True)
            return bool(counts.max() >= 3)

        small, n = minimize_graph(edges, 60, fails)
        assert n <= 3
        assert len(small) == 2

    def test_shrink_trace_prefix(self):
        g = from_edges(
            [(0, 1), (1, 2), (2, 3), (3, 4)], num_vertices=5, name="p5"
        )
        rec = RandomScheduler(3)
        assert differential_check(g, DiffConfig("gpu"), scheduler=rec) is None
        trace = rec.trace
        # Synthetic failure predicate: "fails" while the prefix is long
        # enough; shrink must find the threshold exactly.
        threshold = len(trace.picks) // 3

        def fails_with_trace(t):
            return len(t.picks) >= threshold

        small = shrink_trace(trace, fails_with_trace)
        assert len(small.picks) == threshold
        # A shrunk trace still drives a complete, correct run via the
        # round-robin tail.
        msg = differential_check(
            g, DiffConfig("gpu"), scheduler=ReplayScheduler(small)
        )
        assert msg is None


class TestCli:
    def test_fuzz_cli_pass(self, capsys):
        rc = verify_main(["fuzz", "--trials", "25", "--seed", "3", "--quiet"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "PASS" in out

    def test_fuzz_cli_catches_and_writes_artifact(
        self, tmp_path, capsys, broken_registry
    ):
        out_path = tmp_path / "cx.json"
        rc = verify_main(
            [
                "fuzz", "--trials", "300", "--seed", "0",
                "--backends", ",".join(broken_registry),
                "--out", str(out_path), "--quiet",
            ]
        )
        assert rc == 1
        data = json.loads(out_path.read_text())
        assert data["backend"] in broken_registry
        assert data["minimized"] is True

        # replay CLI on the artifact (CI triage path).
        rc = verify_main(["replay", str(out_path), "--expect-failure"])
        assert rc == 0
        assert "reproduces" in capsys.readouterr().out

    def test_selfcheck_cli(self, capsys):
        rc = verify_main(["selfcheck", "--trials", "200", "--seed", "0"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "selfcheck: OK" in out


def test_g_hook_noretry_is_actually_single_shot():
    # Defense against the mutant quietly being fixed: the generator must
    # issue at most one CAS.
    from repro.gpusim.memory import DeviceMemory

    ops = []
    mem_parent = np.arange(4, dtype=np.int64)

    class FakeArr:
        name = "parent"
        data = mem_parent

    gen = g_hook_noretry(3, 1, FakeArr())
    try:
        op = next(gen)
        while True:
            ops.append(op)
            # Simulate a FAILED cas (someone else changed the slot).
            op = gen.send(0)
    except StopIteration:
        pass
    assert len([o for o in ops if o[0] == "cas"]) == 1
