"""Tests for the virtual-thread CPU executor and specs."""

import pytest

from repro.cpusim import E5_2687W, X5690, CpuSpec, VirtualThreadPool


class TestSpec:
    def test_presets(self):
        assert E5_2687W.num_threads == 40
        assert X5690.num_threads == 12
        assert E5_2687W.fork_join_overhead_s > X5690.fork_join_overhead_s

    def test_invalid(self):
        with pytest.raises(ValueError):
            CpuSpec("x", 0)
        with pytest.raises(ValueError):
            CpuSpec("x", 4, relative_core_speed=0)


class TestChunking:
    def test_static_chunks_cover_range(self):
        pool = VirtualThreadPool(CpuSpec("t", 4))
        chunks = pool._chunks(100, "static", None)
        assert chunks[0][0] == 0
        assert chunks[-1][1] == 100
        covered = sum(b - a for a, b in chunks)
        assert covered == 100

    def test_guided_chunks_decrease(self):
        pool = VirtualThreadPool(CpuSpec("t", 4))
        chunks = pool._chunks(1000, "guided", None)
        sizes = [b - a for a, b in chunks]
        assert sizes[0] > sizes[-1]
        assert sum(sizes) == 1000

    def test_dynamic_chunks(self):
        pool = VirtualThreadPool(CpuSpec("t", 4))
        chunks = pool._chunks(64, "dynamic", 8)
        assert all(b - a <= 8 for a, b in chunks)

    def test_empty_range(self):
        pool = VirtualThreadPool(CpuSpec("t", 4))
        assert pool._chunks(0, "guided", None) == []

    def test_unknown_schedule(self):
        pool = VirtualThreadPool(CpuSpec("t", 4))
        with pytest.raises(ValueError):
            pool._chunks(10, "fractal", None)


class TestParallelFor:
    def test_body_sees_every_index(self):
        pool = VirtualThreadPool(CpuSpec("t", 4))
        seen = []

        def body(start, stop):
            seen.extend(range(start, stop))

        pool.parallel_for(57, body)
        assert sorted(seen) == list(range(57))

    def test_region_recorded(self):
        pool = VirtualThreadPool(CpuSpec("t", 2))
        pool.parallel_for(10, lambda a, b: None, name="r1")
        assert len(pool.regions) == 1
        r = pool.regions[0]
        assert r.name == "r1"
        assert r.span_s <= r.work_s + 1e-12
        assert r.modeled_s >= 0

    def test_more_threads_lower_span(self):
        import time

        def slow_body(start, stop):
            t_end = time.perf_counter() + 0.0002
            while time.perf_counter() < t_end:
                pass

        small = VirtualThreadPool(CpuSpec("s", 1))
        big = VirtualThreadPool(CpuSpec("b", 16))
        small.parallel_for(32, slow_body, schedule="static", chunk=1)
        big.parallel_for(32, slow_body, schedule="static", chunk=1)
        assert big.regions[0].span_s < small.regions[0].span_s

    def test_modeled_time_accumulates(self):
        pool = VirtualThreadPool(CpuSpec("t", 2))
        pool.parallel_for(4, lambda a, b: None)
        pool.parallel_for(4, lambda a, b: None)
        assert pool.modeled_time_s >= 2 * pool.spec.fork_join_overhead_s
        assert pool.modeled_time_ms == pytest.approx(pool.modeled_time_s * 1e3)

    def test_reset(self):
        pool = VirtualThreadPool(CpuSpec("t", 2))
        pool.parallel_for(4, lambda a, b: None)
        pool.reset()
        assert pool.modeled_time_s == 0
        assert pool.regions == []


class TestSerialAndBulk:
    def test_serial_charges_full_time(self):
        pool = VirtualThreadPool(CpuSpec("t", 8, relative_core_speed=2.0))
        result = pool.serial(lambda: 42, name="s")
        assert result == 42
        r = pool.regions[0]
        assert r.serial
        assert r.modeled_s == pytest.approx(r.work_s / 2.0)

    def test_bulk_divides_by_threads(self):
        pool = VirtualThreadPool(CpuSpec("t", 10))
        pool.parallel_bulk(lambda: sum(range(10000)), name="b")
        r = pool.regions[0]
        assert r.span_s == pytest.approx(r.work_s / 10)

    def test_core_speed_scales_modeled_time(self):
        fast = VirtualThreadPool(CpuSpec("f", 1, relative_core_speed=2.0))
        slow = VirtualThreadPool(CpuSpec("s", 1, relative_core_speed=1.0))

        def body(a, b):
            sum(range(2000))

        fast.parallel_for(16, body, schedule="static", chunk=16)
        slow.parallel_for(16, body, schedule="static", chunk=16)
        # Same measured work, halved modeled time on the faster core
        # (allow slack for timing noise).
        ratio = slow.regions[0].modeled_s / max(fast.regions[0].modeled_s, 1e-12)
        assert ratio > 1.2
