"""Tests for the 18-input stand-in suite."""

import pytest

from repro.generators.suite import SCALES, SUITE, load, load_suite, suite_names
from repro.graph.stats import graph_stats
from repro.graph.validate import validate_undirected


class TestSuiteShape:
    def test_eighteen_inputs(self):
        assert len(suite_names()) == 18

    def test_paper_names_present(self):
        for name in ("2d-2e20.sym", "europe_osm", "kron_g500-logn21", "uk-2002"):
            assert name in SUITE

    def test_all_scales_defined(self):
        for spec in SUITE.values():
            assert set(spec.factories) == set(SCALES)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load("no-such-graph")

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            load("internet", "gigantic")


class TestSuiteStructure:
    @pytest.mark.parametrize("name", suite_names())
    def test_tiny_valid_and_named(self, name):
        g = load(name, "tiny")
        validate_undirected(g)
        assert g.name == name
        assert g.num_vertices > 0

    def test_deterministic(self):
        a = load("rmat16.sym", "tiny")
        b = load("rmat16.sym", "tiny")
        assert a.row_ptr.tolist() == b.row_ptr.tolist()
        assert a.col_idx.tolist() == b.col_idx.tolist()

    def test_scales_grow(self):
        for name in ("internet", "rmat16.sym", "europe_osm"):
            tiny = load(name, "tiny")
            small = load(name, "small")
            assert small.num_vertices > tiny.num_vertices

    def test_single_component_graphs(self):
        # These paper inputs have exactly one CC; stand-ins must too.
        for name in ("2d-2e20.sym", "europe_osm", "USA-road-d.NY",
                     "USA-road-d.USA", "internet", "citationCiteseer",
                     "coPapersDBLP", "delaunay_n24", "r4-2e23.sym"):
            s = graph_stats(load(name, "tiny"))
            assert s.num_components == 1, name

    def test_many_component_graphs(self):
        # These paper inputs have many CCs; stand-ins must have > 1.
        for name in ("kron_g500-logn21", "rmat16.sym", "rmat22.sym",
                     "as-skitter", "cit-Patents", "uk-2002"):
            s = graph_stats(load(name, "tiny"))
            assert s.num_components > 1, name

    def test_road_maps_low_degree(self):
        for name in ("europe_osm", "USA-road-d.NY", "USA-road-d.USA"):
            s = graph_stats(load(name, "small"))
            assert s.davg < 3.5, name
            assert s.dmax <= 8, name

    def test_kron_skew(self):
        s = graph_stats(load("kron_g500-logn21", "small"))
        assert s.dmin == 0
        assert s.dmax > 20 * s.davg

    def test_load_suite_subset(self):
        graphs = load_suite("tiny", names=["internet", "europe_osm"])
        assert [g.name for g in graphs] == ["internet", "europe_osm"]
