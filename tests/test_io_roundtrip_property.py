"""Property-based round-trip tests over every graph file format."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph import (
    from_edges,
    load_csr_npz,
    read_dimacs,
    read_edge_list,
    read_galois_gr,
    read_matrix_market,
    save_csr_npz,
    write_dimacs,
    write_edge_list,
    write_galois_gr,
    write_matrix_market,
)

FORMATS = {
    "edge_list": (write_edge_list, read_edge_list),
    "dimacs": (write_dimacs, read_dimacs),
    "mtx": (write_matrix_market, read_matrix_market),
    "galois": (write_galois_gr, read_galois_gr),
    "npz": (save_csr_npz, load_csr_npz),
}


@st.composite
def graphs(draw):
    n = draw(st.integers(min_value=1, max_value=25))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=60,
        )
    )
    return from_edges(edges, num_vertices=n), n


@pytest.mark.parametrize("fmt", sorted(FORMATS))
@given(g_n=graphs())
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)
def test_round_trip_preserves_structure(fmt, g_n, tmp_path_factory):
    g, n = g_n
    writer, reader = FORMATS[fmt]
    path = tmp_path_factory.mktemp("io") / f"g.{fmt}"
    writer(g, path)
    back = reader(path)
    # Edge-list / mtx lose isolated trailing vertices (no size header for
    # edge lists); compare edge structure on the common prefix, and the
    # full CSR when the format carries the vertex count.
    if fmt in ("dimacs", "galois", "npz"):
        assert back.num_vertices == g.num_vertices
        assert np.array_equal(back.row_ptr, g.row_ptr)
        assert np.array_equal(back.col_idx, g.col_idx)
    else:
        assert set(back.edges()) == set(g.edges())
