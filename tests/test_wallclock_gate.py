"""Tests for the wall-clock benchmark gate and its observability hooks."""

import json

import numpy as np
import pytest

from repro.core.ecl_cc_numpy import ecl_cc_numpy
from repro.core.ecl_cc_serial import ecl_cc_serial
from repro.errors import VerificationError
from repro.experiments import wallclock
from repro.experiments.wallclock import (
    check_gate,
    frozen_frontier_cc,
    legacy_numpy_cc,
    run_wallclock_gate,
    write_gate_json,
)
from repro.generators import load
from repro.observe import Tracer, use_tracer
from repro.observe.export import to_chrome_trace

GATE_NAMES = ["2d-2e20.sym", "rmat16.sym"]


class TestLegacySnapshot:
    def test_matches_serial(self):
        for name in GATE_NAMES:
            g = load(name, "tiny")
            expected, _ = ecl_cc_serial(g)
            assert np.array_equal(legacy_numpy_cc(g), expected)

    def test_empty_graph(self):
        from repro.graph.build import empty_graph

        assert legacy_numpy_cc(empty_graph(0)).size == 0
        assert legacy_numpy_cc(empty_graph(4)).tolist() == [0, 1, 2, 3]


class TestFrozenFrontierSnapshot:
    def test_matches_serial(self):
        for name in GATE_NAMES + ["USA-road-d.NY", "internet"]:
            g = load(name, "tiny")
            expected, _ = ecl_cc_serial(g)
            assert np.array_equal(frozen_frontier_cc(g), expected)

    def test_empty_graph(self):
        from repro.graph.build import empty_graph

        assert frozen_frontier_cc(empty_graph(0)).size == 0
        assert frozen_frontier_cc(empty_graph(4)).tolist() == [0, 1, 2, 3]

    def test_random_graphs(self):
        from repro.graph.build import from_edges

        rng = np.random.default_rng(2)
        for _ in range(5):
            n = int(rng.integers(2, 300))
            edges = rng.integers(0, n, size=(int(rng.integers(0, 3 * n)), 2))
            g = from_edges(edges, num_vertices=n)
            expected, _ = ecl_cc_serial(g)
            assert np.array_equal(frozen_frontier_cc(g), expected)


class TestGateRun:
    @pytest.fixture(scope="class")
    def payload(self):
        return run_wallclock_gate(
            scale="tiny", names=GATE_NAMES, repeats=1, verify=True
        )

    def test_schema(self, payload):
        assert payload["schema_version"] == wallclock.SCHEMA_VERSION
        assert payload["scale"] == "tiny"
        assert {
            "python", "numpy", "numba", "machine", "system",
            # Schema v5: the scaling targets are hardware-conditioned.
            "cpu_count", "cpus_available", "sharded_workers",
        } <= set(payload["environment"])
        assert payload["environment"]["cpu_count"] >= 1
        assert payload["environment"]["sharded_workers"] == [1, 2, 4]
        assert [r["name"] for r in payload["graphs"]] == GATE_NAMES
        for row in payload["graphs"]:
            assert row["before_ms"] > 0 and row["after_ms"] > 0
            assert row["speedup"] > 0
            assert row["resilient_ms"] > 0
            # Schema v4: contraction head-to-head columns.
            assert row["frozen_frontier_ms"] > 0
            assert row["contract_ms"] > 0
            assert row["best_backend"] in ("contract", "numpy")
            assert row["best_ms"] == min(row["contract_ms"], row["after_ms"])
            assert row["best_speedup"] == pytest.approx(
                row["frozen_frontier_ms"] / row["best_ms"], rel=0.02
            )
            assert row["contract_speedup"] == pytest.approx(
                row["frozen_frontier_ms"] / row["contract_ms"], rel=0.02
            )
            assert row["compiled_speedup"] > 0
            # The ratio is recorded from the rounded fields, so it is
            # exactly reconstructible from the row itself.
            assert row["supervisor_overhead"] == pytest.approx(
                row["resilient_ms"] / row["after_ms"] - 1.0, abs=1e-4
            )
            assert row["labels_verified"]
            assert isinstance(row["frontier_sizes"], list)
            # Schema v5: sharded strong-scaling columns.
            assert row["sharded_workers"] == [1, 2, 4]
            assert set(row["scaling"]) == {"1", "2", "4"}
            assert all(ms > 0 for ms in row["scaling"].values())
            assert row["sharded_ms"] == row["scaling"]["4"]
            assert row["sharded_speedup"] == pytest.approx(
                row["after_ms"] / row["sharded_ms"], abs=5e-4
            )
            assert row["scaling_speedup"] == pytest.approx(
                row["scaling"]["1"] / row["scaling"]["4"], rel=0.02
            )
            # Schema v6: out-of-core budget-accounting columns.
            assert row["oocore_ms"] > 0
            assert row["oocore_shards"] >= 1
            assert row["oocore_merge_passes"] >= 1
            assert 0 < row["oocore_peak_bytes"] <= row["oocore_budget_bytes"]
            assert row["oocore_csr_bytes"] > 0
            # Schema v7: distributed merge columns.
            assert row["dist_ms"] > 0
            assert row["dist_hosts"] == wallclock.DIST_GATE_HOSTS
            assert row["dist_rounds"] >= 1
            assert row["dist_bytes_on_wire"] > 0
            assert row["dist_recoveries"] == 0
            # Schema v3: serving-layer columns.
            assert row["service_qps"] > 0
            assert row["naive_qps"] > 0
            assert row["service_speedup"] == pytest.approx(
                row["service_qps"] / row["naive_qps"], rel=0.02
            )
            assert row["service_verified"]

    def test_oocore_demo_section(self, payload):
        """The size-ceiling demo: a CSR at least OOCORE_DEMO_DIVISOR
        times the budget, streamed with the charged peak under budget."""
        demo = payload["oocore_demo"]
        assert demo["graph"] == "oocore-demo"
        assert demo["oocore_csr_bytes"] >= (
            wallclock.OOCORE_DEMO_DIVISOR * demo["oocore_budget_bytes"]
        )
        assert demo["oocore_peak_bytes"] <= demo["oocore_budget_bytes"]
        assert demo["oocore_ceiling"] >= 10.0
        assert demo["oocore_shards"] >= 2
        assert demo["oocore_merge_passes"] >= 1
        assert demo["oocore_ms"] > 0
        assert demo["labels_verified"]

    def test_service_columns_skippable(self):
        payload = run_wallclock_gate(
            scale="tiny", names=["rmat16.sym"], repeats=1, verify=False,
            service_ops=0,
        )
        assert "service_qps" not in payload["graphs"][0]

    def test_backends_filter_drops_columns(self):
        payload = run_wallclock_gate(
            scale="tiny", names=["rmat16.sym"], repeats=1, verify=True,
            service_ops=0, backends=["contract"],
        )
        row = payload["graphs"][0]
        # The always-on reference columns survive the filter ...
        assert row["after_ms"] > 0 and row["frozen_frontier_ms"] > 0
        assert row["contract_ms"] > 0 and "best_speedup" in row
        # ... and the skipped legs' columns are simply absent.
        for absent in ("before_ms", "speedup", "dense_ms", "fastsv_ms",
                       "resilient_ms", "supervisor_overhead", "oocore_ms",
                       "oocore_peak_bytes", "dist_ms", "dist_rounds",
                       "dist_recoveries"):
            assert absent not in row
        assert "oocore_demo" not in payload
        # A filtered payload must still be checkable.
        problems = check_gate(payload)
        assert all("no-regression floor" not in p or "best" in p
                   for p in problems)

    def test_unknown_backend_leg_raises(self):
        with pytest.raises(ValueError, match="unknown gate leg"):
            run_wallclock_gate(
                scale="tiny", names=["rmat16.sym"], repeats=1,
                backends=["contract", "quantum"],
            )

    def test_invalid_worker_counts_raise(self):
        for bad in ([0], [-2], [2.5], ["4"], []):
            with pytest.raises(ValueError, match="worker"):
                run_wallclock_gate(
                    scale="tiny", names=["rmat16.sym"], repeats=1,
                    backends=["sharded"], workers=bad,
                )

    def test_custom_worker_counts(self):
        payload = run_wallclock_gate(
            scale="tiny", names=["rmat16.sym"], repeats=1, verify=True,
            service_ops=0, backends=["sharded"], workers=[2, 1, 2],
        )
        row = payload["graphs"][0]
        # Deduplicated and sorted, recorded in row and environment.
        assert row["sharded_workers"] == [1, 2]
        assert set(row["scaling"]) == {"1", "2"}
        assert payload["environment"]["sharded_workers"] == [1, 2]
        assert row["sharded_ms"] == row["scaling"]["2"]

    def test_oocore_spill_dir_keeps_demo_manifest(self, tmp_path):
        payload = run_wallclock_gate(
            scale="tiny", names=["rmat16.sym"], repeats=1, verify=True,
            service_ops=0, backends=["oocore"],
            oocore_spill_dir=tmp_path / "spills",
        )
        assert payload["graphs"][0]["oocore_ms"] > 0
        # The demo's spill survives for artifact upload; the per-row
        # spills are ephemeral and cleaned after their runs.
        assert (tmp_path / "spills" / "oocore_demo" / "MANIFEST.json").is_file()
        assert not (tmp_path / "spills" / "rmat16.sym").exists()

    def test_high_diameter_flag(self, payload):
        flags = {r["name"]: r["high_diameter"] for r in payload["graphs"]}
        assert flags["2d-2e20.sym"] is True
        assert flags["rmat16.sym"] is False

    def test_json_roundtrip(self, payload, tmp_path):
        path = write_gate_json(payload, tmp_path / "gate.json")
        assert json.loads(path.read_text()) == payload

    def test_label_mismatch_raises(self, monkeypatch):
        def bad_serial(graph):
            return np.zeros(graph.num_vertices, dtype=np.int64) - 1, None

        monkeypatch.setattr(wallclock, "ecl_cc_serial", bad_serial)
        with pytest.raises(VerificationError, match="diverge"):
            run_wallclock_gate(
                scale="tiny", names=["rmat16.sym"], repeats=1, verify=True
            )


class TestCheckGate:
    @staticmethod
    def row(name, speedup, high_diameter=True, n=200_000):
        return {
            "name": name,
            "speedup": speedup,
            "high_diameter": high_diameter,
            "num_vertices": n,
        }

    def test_passes(self):
        payload = {"graphs": [self.row("a", 3.5), self.row("b", 1.0, False)]}
        assert check_gate(payload) == []

    def test_flags_regression(self):
        payload = {"graphs": [self.row("a", 3.5), self.row("b", 0.8, False)]}
        problems = check_gate(payload)
        assert len(problems) == 1 and "b" in problems[0]

    def test_flags_supervisor_overhead(self):
        slow = dict(
            self.row("a", 3.5), after_ms=100.0, resilient_ms=110.0
        )
        problems = check_gate({"graphs": [slow]})
        assert len(problems) == 1 and "overhead budget" in problems[0]

    def test_overhead_slack_covers_tiny_graphs(self):
        # +10% relative, but only 0.2 ms absolute: inside the slack.
        tiny = dict(self.row("a", 3.5), after_ms=2.0, resilient_ms=2.2)
        assert check_gate({"graphs": [tiny]}) == []

    def test_rows_without_resilient_field_still_checked(self):
        # schema_version 1 payloads predate the resilient columns.
        assert check_gate({"graphs": [self.row("a", 3.5)]}) == []

    def test_flags_service_speedup_below_target(self):
        slow = dict(self.row("a", 3.5), service_speedup=4.0)
        problems = check_gate({"graphs": [slow]})
        assert len(problems) == 1 and "serving target" in problems[0]

    def test_service_speedup_at_target_passes(self):
        ok = dict(self.row("a", 3.5), service_speedup=12.5)
        assert check_gate({"graphs": [ok]}) == []

    def test_rows_without_service_fields_exempt(self):
        # schema v2 payloads predate the serving columns.
        assert check_gate({"graphs": [self.row("a", 3.5)]}) == []

    def test_requires_high_diameter_target(self):
        # Big speedup, but on a low-diameter / too-small graph only.
        payload = {
            "graphs": [
                self.row("a", 9.0, high_diameter=False),
                self.row("b", 9.0, n=50_000),
                self.row("c", 2.9),
            ]
        }
        problems = check_gate(payload)
        assert len(problems) == 1 and "3.0x" in problems[0]

    def test_legacy_target_exempt_without_speedup_columns(self):
        # A --backends run that skipped the legacy leg has no "speedup"
        # column anywhere; the 3x legacy target cannot apply.
        rows = [
            {"name": "a", "high_diameter": True, "num_vertices": 200_000,
             "best_speedup": 2.5},
            {"name": "b", "high_diameter": False, "num_vertices": 200_000,
             "best_speedup": 2.1},
        ]
        assert check_gate({"graphs": rows}) == []

    def test_contract_family_floor(self):
        bad = dict(self.row("a", 3.5), best_speedup=0.8)
        problems = check_gate({"graphs": [bad]})
        assert any("best native backend" in p for p in problems)

    def test_contract_target_count(self):
        rows = [
            dict(self.row("a", 3.5), best_speedup=2.4),
            dict(self.row("b", 3.5, False), best_speedup=1.1),
        ]
        problems = check_gate({"graphs": rows})
        assert len(problems) == 1 and "best-vs-frozen-frontier" in problems[0]
        rows[1]["best_speedup"] = 2.0
        assert check_gate({"graphs": rows}) == []

    def test_rows_without_contract_fields_exempt(self):
        # schema v3 payloads predate the contraction columns.
        assert check_gate({"graphs": [self.row("a", 3.5)]}) == []

    @staticmethod
    def sharded_row(name, sharded=1.0, scaling=2.0, **kw):
        return dict(
            TestCheckGate.row(name, 3.5, **kw),
            sharded_workers=[1, 2, 4],
            sharded_speedup=sharded,
            scaling_speedup=scaling,
        )

    def test_sharded_floor_enforced_with_two_cpus(self):
        payload = {
            "environment": {"cpu_count": 2},
            "graphs": [self.sharded_row("a", sharded=0.3)],
        }
        problems = check_gate(payload)
        assert any("sharded no-regression floor" in p for p in problems)

    def test_sharded_floor_skipped_on_one_cpu(self):
        payload = {
            "environment": {"cpu_count": 1},
            "graphs": [self.sharded_row("a", sharded=0.3, scaling=0.5)],
        }
        assert check_gate(payload) == []

    def test_scaling_target_enforced_with_four_cpus(self):
        payload = {
            "environment": {"cpu_count": 8},
            "graphs": [
                self.sharded_row("a", scaling=1.9),
                self.sharded_row("b", scaling=1.2, high_diameter=False),
            ],
        }
        problems = check_gate(payload)
        assert len(problems) == 1 and "strong-scaling target" in problems[0]
        payload["graphs"][1]["scaling_speedup"] = 1.8
        assert check_gate(payload) == []

    def test_scaling_target_skipped_below_four_cpus(self):
        payload = {
            "environment": {"cpu_count": 2},
            "graphs": [self.sharded_row("a", scaling=0.8)],
        }
        assert check_gate(payload) == []

    def test_rows_without_sharded_fields_exempt(self):
        # schema v4 payloads predate the sharded columns.
        payload = {
            "environment": {"cpu_count": 16},
            "graphs": [self.row("a", 3.5)],
        }
        assert check_gate(payload) == []

    @staticmethod
    def demo(peak=100, budget=150, ceiling=12.0, verified=True):
        return {
            "graph": "oocore-demo",
            "oocore_peak_bytes": peak,
            "oocore_budget_bytes": budget,
            "oocore_ceiling": ceiling,
            "labels_verified": verified,
        }

    def test_oocore_row_over_budget_flagged(self):
        bad = dict(self.row("a", 3.5), oocore_peak_bytes=2_000,
                   oocore_budget_bytes=1_000)
        problems = check_gate({"graphs": [bad]})
        assert len(problems) == 1 and "exceeds the memory budget" in problems[0]
        bad["oocore_peak_bytes"] = 1_000  # at budget is within budget
        assert check_gate({"graphs": [bad]}) == []

    def test_oocore_demo_over_budget_flagged(self):
        payload = {
            "graphs": [self.row("a", 3.5)],
            "oocore_demo": self.demo(peak=151),
        }
        problems = check_gate(payload)
        assert len(problems) == 1 and "oocore demo" in problems[0]

    def test_oocore_demo_ceiling_below_target_flagged(self):
        payload = {
            "graphs": [self.row("a", 3.5)],
            "oocore_demo": self.demo(ceiling=8.0),
        }
        problems = check_gate(payload)
        assert len(problems) == 1 and "out-of-core target" in problems[0]
        assert check_gate(payload, min_oocore_ceiling=8.0) == []

    def test_oocore_demo_unverified_flagged(self):
        payload = {
            "graphs": [self.row("a", 3.5)],
            "oocore_demo": self.demo(verified=False),
        }
        problems = check_gate(payload)
        assert len(problems) == 1 and "not gate evidence" in problems[0]

    def test_payloads_without_oocore_fields_exempt(self):
        # schema v5 payloads predate the out-of-core columns.
        assert check_gate({"graphs": [self.row("a", 3.5)]}) == []

    def test_dist_recoveries_nonzero_flagged(self):
        bad = dict(self.row("a", 3.5), dist_recoveries=2)
        problems = check_gate({"graphs": [bad]})
        assert len(problems) == 1 and "failure detector" in problems[0]
        bad["dist_recoveries"] = 0
        assert check_gate({"graphs": [bad]}) == []

    def test_payloads_without_dist_fields_exempt(self):
        # schema v6 payloads predate the distributed columns.
        assert check_gate({"graphs": [self.row("a", 3.5)]}) == []


class TestFrontierTraceVisibility:
    def test_frontier_gauges_reach_chrome_trace(self):
        g = load("rmat16.sym", "tiny")
        tracer = Tracer()
        with use_tracer(tracer):
            # Init1 leaves the whole first frontier alive, guaranteeing
            # at least one hook round even on easy graphs.
            ecl_cc_numpy(g, init="Init1")
        trace = to_chrome_trace(tracer)
        counter_events = [
            e for e in trace["traceEvents"] if e.get("ph") == "C"
        ]
        names = {e["name"] for e in counter_events}
        assert "numpy.frontier_edges" in names
        assert "numpy.active_vertices" in names
        span_names = {
            e["name"] for e in trace["traceEvents"] if e.get("ph") == "X"
        }
        assert "numpy:hook-rounds" in span_names

    def test_fastsv_gauge_reaches_chrome_trace(self):
        from repro.baselines.fastsv import fastsv_cc

        g = load("rmat16.sym", "tiny")
        tracer = Tracer()
        with use_tracer(tracer):
            fastsv_cc(g)
        trace = to_chrome_trace(tracer)
        names = {
            e["name"]
            for e in trace["traceEvents"]
            if e.get("ph") == "C"
        }
        assert "fastsv.frontier_pairs" in names
