"""Tests for the optional compiled kernel tier (repro.core.kernels).

The compiled tier must be a pure accelerator: same results bit-for-bit
as the numpy fallbacks, probe-gated so the library works identically
with numba absent, disabled by ``REPRO_NO_NUMBA``, and locally
suppressible via ``force_numpy()``.  When real numba is not installed
(the common CI leg), the dispatch path is exercised through a stub
module whose ``njit`` runs the kernels as plain Python — slower, but
the exact control flow the compiled tier would take.
"""

from __future__ import annotations

import importlib
import sys
import types

import numpy as np
import pytest

from repro.core import kernels


def _random_forest(rng, n):
    """A random decreasing forest (parent[v] <= v)."""
    par = np.arange(n, dtype=np.int64)
    for v in range(1, n):
        if rng.random() < 0.7:
            par[v] = rng.integers(0, v)
    return par


def _flatten_reference(par):
    par = par.copy()
    while True:
        nxt = par[par]
        if np.array_equal(nxt, par):
            return par
        par = nxt


class TestProbe:
    def test_flag_matches_importability(self):
        try:
            import numba  # noqa: F401

            importable = True
        except ImportError:
            importable = False
        import os

        disabled = os.environ.get("REPRO_NO_NUMBA", "") not in ("", "0")
        assert kernels.NUMBA_AVAILABLE == (importable and not disabled)

    def test_env_escape_hatch(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMBA", "1")
        try:
            importlib.reload(kernels)
            assert not kernels.NUMBA_AVAILABLE
            assert not kernels.numba_active()
        finally:
            monkeypatch.delenv("REPRO_NO_NUMBA")
            importlib.reload(kernels)

    def test_env_zero_does_not_disable(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMBA", "0")
        try:
            importlib.reload(kernels)
            assert kernels.NUMBA_AVAILABLE == kernels._probe()
        finally:
            monkeypatch.delenv("REPRO_NO_NUMBA")
            importlib.reload(kernels)


class TestForceNumpy:
    def test_disables_dispatch_and_nests(self):
        with kernels.force_numpy():
            assert not kernels.numba_active()
            with kernels.force_numpy():
                assert not kernels.numba_active()
            assert not kernels.numba_active()
        assert kernels.numba_active() == kernels.NUMBA_AVAILABLE


class TestNumpyTier:
    """The fallback implementations, checked against naive references."""

    def test_selftest_passes(self):
        assert kernels.selftest() == 0

    def test_flatten_decreasing(self):
        rng = np.random.default_rng(0)
        with kernels.force_numpy():
            for n in (0, 1, 2, 63, 1024):
                par = _random_forest(rng, n)
                ref = _flatten_reference(par)
                assert np.array_equal(kernels.flatten_decreasing(par), ref)

    def test_flatten_forest_handles_upward_parents(self):
        # FastSV-style forests may point upward; still acyclic.
        par = np.array([3, 0, 1, 3, 2], dtype=np.int64)
        changed = kernels.flatten_forest(par)
        assert changed > 0
        assert np.array_equal(par, np.full(5, 3, dtype=np.int64))
        assert kernels.flatten_forest(par) == 0

    def test_flatten_indices_subset_only(self):
        par = np.array([0, 0, 1, 2, 3], dtype=np.int64)
        idx = np.array([4], dtype=np.int64)
        kernels.flatten_indices(par, idx)
        assert par[4] == 0  # the listed vertex is fully resolved
        assert kernels.flatten_indices(par, np.empty(0, dtype=np.int64)) == 0

    def test_renumber_roots_dense_ascending(self):
        par = np.array([0, 0, 2, 2, 4], dtype=np.int64)
        comp, k = kernels.renumber_roots(par)
        assert k == 3
        assert comp.tolist() == [0, 0, 1, 1, 2]
        comp, k = kernels.renumber_roots(np.empty(0, dtype=np.int64))
        assert k == 0 and comp.size == 0

    def test_segment_min_starts(self):
        hi = np.array([1, 1, 4, 4, 4, 9], dtype=np.int64)
        assert kernels.segment_min_starts(hi).tolist() == [
            True, False, True, False, False, True,
        ]
        assert kernels.segment_min_starts(hi[:0]).size == 0


@pytest.fixture
def stub_numba(monkeypatch):
    """Install a fake numba whose ``njit`` runs kernels as plain Python.

    Slower than the real thing but takes the identical dispatch path, so
    the compiled-tier control flow is testable without numba installed.
    Reloads ``kernels`` with the stub active and restores the genuine
    probe state afterwards.
    """
    fake = types.ModuleType("numba")

    def njit(*args, **kwargs):
        if args and callable(args[0]):
            return args[0]

        def deco(fn):
            return fn

        return deco

    fake.njit = njit
    monkeypatch.delenv("REPRO_NO_NUMBA", raising=False)
    monkeypatch.setitem(sys.modules, "numba", fake)
    importlib.reload(kernels)
    assert kernels.NUMBA_AVAILABLE and kernels.numba_active()
    yield kernels
    monkeypatch.undo()
    importlib.reload(kernels)


class TestCompiledDispatch:
    def test_kernels_bit_identical_across_tiers(self, stub_numba):
        rng = np.random.default_rng(1)
        for n in (0, 1, 2, 257, 1024):
            par = _random_forest(rng, n)
            compiled = stub_numba.flatten_decreasing(par.copy())
            with stub_numba.force_numpy():
                fallback = stub_numba.flatten_decreasing(par.copy())
            assert np.array_equal(compiled, fallback)

            forest_c = par.copy()
            forest_f = par.copy()
            stub_numba.flatten_forest(forest_c)
            with stub_numba.force_numpy():
                stub_numba.flatten_forest(forest_f)
            assert np.array_equal(forest_c, forest_f)

            comp_c, k_c = stub_numba.renumber_roots(compiled.copy())
            with stub_numba.force_numpy():
                comp_f, k_f = stub_numba.renumber_roots(fallback.copy())
            assert k_c == k_f
            assert np.array_equal(comp_c, comp_f)

        hi = np.sort(rng.integers(0, 40, size=100)).astype(np.int64)
        mask_c = stub_numba.segment_min_starts(hi)
        with stub_numba.force_numpy():
            mask_f = stub_numba.segment_min_starts(hi)
        assert np.array_equal(mask_c, mask_f)

    def test_backend_labels_identical_across_tiers(self, stub_numba):
        # End to end: the frontier and contraction backends must produce
        # bit-identical labels whichever tier their flattens dispatch to.
        from repro.core.contract import contract_cc
        from repro.core.ecl_cc_numpy import ecl_cc_numpy
        from repro.generators import load
        from repro.verify import reference_labels

        graph = load("2d-2e20.sym", "tiny")
        ref = reference_labels(graph)
        assert stub_numba.numba_active()
        frontier_compiled, _ = ecl_cc_numpy(graph)
        contract_compiled, _ = contract_cc(graph, base_cutoff=0)
        with stub_numba.force_numpy():
            frontier_fallback, _ = ecl_cc_numpy(graph)
            contract_fallback, _ = contract_cc(graph, base_cutoff=0)
        for labels in (
            frontier_compiled,
            frontier_fallback,
            contract_compiled,
            contract_fallback,
        ):
            assert np.array_equal(labels, ref)

    def test_selftest_covers_stub_tier(self, stub_numba):
        assert stub_numba.selftest() == 0


class TestRealNumba:
    """Run only when numba is actually installed (the compiled CI leg)."""

    pytestmark = pytest.mark.skipif(
        not kernels.NUMBA_AVAILABLE, reason="numba not installed"
    )

    def test_selftest_exercises_compiled_tier(self):
        assert kernels.selftest() == 0

    def test_gate_identity_on_real_graph(self):
        from repro.core.contract import contract_cc
        from repro.generators import load

        graph = load("USA-road-d.NY", "tiny")
        compiled, _ = contract_cc(graph, base_cutoff=0)
        with kernels.force_numpy():
            fallback, _ = contract_cc(graph, base_cutoff=0)
        assert np.array_equal(compiled, fallback)
