"""Shared fixtures: small reference graphs with known components, plus
an autouse guard that fails any test leaking a shared-memory segment or
an out-of-core spill directory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dist import active_host_scratch_dirs, live_network_threads
from repro.graph.build import empty_graph, from_edges
from repro.graph.csr import leaked_shared_segments
from repro.outofcore import active_spill_dirs


@pytest.fixture(autouse=True)
def _resource_leak_guard():
    """Every test must leave no /dev/shm segments, no spill temp
    directories, no simulated-host scratch directories, and no live
    SimNetwork host threads behind — leaks from one test poison later
    ones (and, in CI, the machine), so they fail loudly at the leaking
    test."""
    yield
    leaked = leaked_shared_segments()
    assert leaked == [], f"test leaked shared-memory segments: {leaked}"
    spills = active_spill_dirs()
    assert spills == [], f"test leaked spill directories: {spills}"
    scratch = active_host_scratch_dirs()
    assert scratch == [], f"test leaked simulated-host scratch dirs: {scratch}"
    threads = live_network_threads()
    assert threads == [], (
        f"test leaked live simulated-host threads: {[t.name for t in threads]}"
    )


@pytest.fixture
def triangle_plus_edge():
    """Two components: {0,1,2} (a triangle) and {3,4}; vertex 5 isolated."""
    return from_edges([(0, 1), (1, 2), (2, 0), (3, 4)], num_vertices=6, name="tri+e")


@pytest.fixture
def path_graph():
    """A 10-vertex path: one component, maximum diameter."""
    return from_edges([(i, i + 1) for i in range(9)], name="path10")


@pytest.fixture
def star_graph():
    """A star with center 0 and 8 leaves."""
    return from_edges([(0, i) for i in range(1, 9)], name="star9")


@pytest.fixture
def isolated_graph():
    """Five isolated vertices: five components, no edges."""
    return empty_graph(5)


@pytest.fixture
def two_cliques():
    """Two K4 cliques: components {0..3} and {4..7}."""
    edges = [(i, j) for i in range(4) for j in range(i + 1, 4)]
    edges += [(i, j) for i in range(4, 8) for j in range(i + 1, 8)]
    return from_edges(edges, name="2xK4")


def expected_labels_triangle_plus_edge():
    return np.array([0, 0, 0, 3, 3, 5], dtype=np.int64)
