"""Tests for the repro.observe tracing/metrics subsystem."""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro import connected_components
from repro.observe import (
    DISABLED,
    DisabledTracer,
    Tracer,
    counters_to_csv,
    current_tracer,
    render_tree,
    to_chrome_trace,
    to_csv,
    use_tracer,
)


class TestSpanNesting:
    def test_parent_depth_and_order(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner-a"):
                pass
            with t.span("inner-b"):
                with t.span("leaf"):
                    pass
        names = [s.name for s in t.spans]
        assert names == ["outer", "inner-a", "inner-b", "leaf"]
        outer, a, b, leaf = t.spans
        assert outer.parent == -1 and outer.depth == 0
        assert a.parent == outer.index and a.depth == 1
        assert b.parent == outer.index and b.depth == 1
        assert leaf.parent == b.index and leaf.depth == 2
        assert t.children(outer) == [a, b]
        assert t.roots() == [outer]

    def test_durations_nest(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                time.sleep(0.002)
        outer, inner = t.spans
        assert inner.duration_ms >= 2.0
        assert outer.duration_ms >= inner.duration_ms

    def test_attrs_and_modeled(self):
        t = Tracer()
        with t.span("k", category="gpusim.kernel", threads=32) as sp:
            sp.set("modeled_ms", 1.25)
            sp.update(cycles=100)
        (sp,) = t.spans
        assert sp.attrs["threads"] == 32
        assert sp.modeled_ms == 1.25
        assert sp.effective_ms == 1.25  # modeled preferred over wall
        assert sp.category == "gpusim.kernel"

    def test_counters_and_gauges(self):
        t = Tracer()
        t.count("x")
        t.count("x", 2)
        t.gauge("occ", 0.5)
        assert t.counters["x"] == 3
        assert t.gauges[0][1:] == ("occ", 0.5)

    def test_exception_still_closes_span(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.span("boom"):
                raise RuntimeError
        assert t.spans[0].duration_ms >= 0.0
        assert not t._stack


class TestDisabledTracer:
    def test_ambient_default_is_disabled(self):
        assert current_tracer() is DISABLED
        assert isinstance(current_tracer(), DisabledTracer)
        assert not current_tracer().enabled

    def test_disabled_records_nothing(self, triangle_plus_edge):
        before = len(DISABLED.spans)
        connected_components(triangle_plus_edge, backend="numpy")
        connected_components(triangle_plus_edge, backend="gpu")
        assert len(DISABLED.spans) == before == 0
        assert DISABLED.counters == {}
        assert DISABLED.gauges == []

    def test_disabled_span_is_shared_noop(self):
        s1 = DISABLED.span("a", category="x", foo=1)
        s2 = DISABLED.span("b")
        assert s1 is s2  # one shared null span, no allocation per call
        with s1 as sp:
            sp.set("k", "v")
            sp.update(x=1)

    def test_activation_scoping(self):
        t = Tracer()
        with t:
            assert current_tracer() is t
            with use_tracer(Tracer()) as inner:
                assert current_tracer() is inner
            assert current_tracer() is t
        assert current_tracer() is DISABLED

    def test_full_result_trace_none_when_disabled(self, triangle_plus_edge):
        res = connected_components(
            triangle_plus_edge, backend="numpy", full_result=True
        )
        assert res.trace is None


class TestBackendInstrumentation:
    def test_gpu_kernel_spans_match_launch_stats(self, two_cliques):
        with Tracer() as t:
            res = connected_components(two_cliques, backend="gpu", full_result=True)
        kernel_spans = t.find_spans(category="gpusim.kernel")
        assert len(kernel_spans) == len(res.stats.kernels)
        for sp, launch in zip(kernel_spans, res.stats.kernels):
            assert sp.name == f"kernel:{launch.name}"
            assert sp.attrs["modeled_ms"] == launch.time_ms
            assert sp.attrs["atomics"] == launch.cache.atomics
        modeled = sum(sp.attrs["modeled_ms"] for sp in kernel_spans)
        assert modeled == pytest.approx(res.stats.total_time_ms, rel=0.01)
        assert t.counters["gpusim.launches"] == len(res.stats.kernels)

    def test_gpu_worklist_gauges(self):
        from repro.generators import load

        g = load("coPapersDBLP", "tiny")  # has medium/high-degree vertices
        with Tracer() as t:
            res = connected_components(g, backend="gpu", full_result=True)
        gauge_names = {name for _t, name, _v in t.gauges}
        assert {"worklist.front", "worklist.back", "worklist.occupancy"} <= gauge_names
        front = next(v for _t, n, v in t.gauges if n == "worklist.front")
        assert front == res.stats.worklist_front

    def test_omp_region_spans(self, two_cliques):
        with Tracer() as t:
            res = connected_components(two_cliques, backend="omp", full_result=True)
        regions = t.find_spans(category="cpusim.region")
        assert [s.name for s in regions] == [
            "region:init", "region:compute", "region:finalize",
        ]
        assert len(regions) == len(res.stats.regions)
        for sp, reg in zip(regions, res.stats.regions):
            assert sp.attrs["modeled_ms"] == pytest.approx(reg.modeled_s * 1e3)
            assert sp.attrs["chunks"] == reg.num_chunks
            assert sp.attrs["imbalance"] >= 1.0 or reg.work_s == 0

    def test_serial_phase_spans(self, path_graph):
        with Tracer() as t:
            connected_components(path_graph, backend="serial")
        names = [s.name for s in t.find_spans(category="core.serial")]
        assert names == ["serial:init", "serial:compute", "serial:finalize"]

    def test_numpy_round_attrs(self, path_graph):
        with Tracer() as t:
            res = connected_components(path_graph, backend="numpy", full_result=True)
        (hook_span,) = t.find_spans(name="numpy:hook-rounds")
        assert hook_span.attrs["hook_rounds"] == res.stats.hook_rounds
        assert hook_span.attrs["doubling_passes"] == res.stats.doubling_passes

    def test_fastsv_iteration_counter(self, path_graph):
        with Tracer() as t:
            res = connected_components(path_graph, backend="fastsv", full_result=True)
        assert t.counters["fastsv.iterations"] == res.stats.iterations
        (sp,) = t.find_spans(name="fastsv:converge")
        assert sp.attrs["iterations"] == res.stats.iterations

    def test_afforest_giant_span(self):
        from repro.generators import load

        g = load("rmat16.sym", "tiny")
        with Tracer() as t:
            res = connected_components(g, backend="afforest", full_result=True)
        (sp,) = t.find_spans(name="afforest:sample-giant")
        assert sp.attrs["giant_label"] == res.stats.giant_label
        assert sp.attrs["skipped_vertices"] == res.stats.skipped_vertices

    def test_api_span_wraps_backend(self, triangle_plus_edge):
        with Tracer() as t:
            res = connected_components(
                triangle_plus_edge, backend="numpy", full_result=True
            )
        root = t.roots()[0]
        assert root.name == "cc:numpy"
        assert root.attrs["num_vertices"] == triangle_plus_edge.num_vertices
        assert res.trace == t.spans  # whole run captured on the result

    def test_experiment_spans(self):
        from repro.experiments.registry import run_experiment

        with Tracer() as t:
            run_experiment("table2", scale="tiny", names=["rmat16.sym"])
        assert t.find_spans(name="experiment:table2")


class TestExporters:
    def _traced(self, graph):
        t = Tracer(meta={"purpose": "test"})
        with t:
            connected_components(graph, backend="gpu")
        t.count("hand.counter", 7)
        return t

    def test_chrome_trace_round_trip(self, two_cliques):
        t = self._traced(two_cliques)
        doc = json.loads(json.dumps(to_chrome_trace(t)))
        span_events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        counter_events = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert len(span_events) == len(t.spans)
        assert len(counter_events) == len(t.gauges)
        by_name = {e["name"]: e for e in span_events}
        for sp in t.spans:
            ev = by_name[sp.name]
            assert ev["ts"] == pytest.approx(sp.start_ms * 1e3, abs=0.01)
            assert ev["dur"] == pytest.approx(sp.effective_ms * 1e3, abs=0.01)
            assert ev["args"]["wall_ms"] == pytest.approx(sp.duration_ms, abs=1e-4)
        assert doc["metadata"]["counters"]["hand.counter"] == 7
        assert doc["metadata"]["purpose"] == "test"

    def test_csv_shape(self, two_cliques):
        t = self._traced(two_cliques)
        lines = to_csv(t).splitlines()
        assert len(lines) == len(t.spans) + 1
        header = lines[0].split(",")
        assert header[:5] == ["index", "parent", "depth", "category", "name"]
        counters = counters_to_csv(t).splitlines()
        assert counters[0] == "name,value"
        assert any("hand.counter" in line for line in counters)

    def test_tree_rendering(self, two_cliques):
        t = self._traced(two_cliques)
        text = render_tree(t)
        assert "cc:gpu" in text
        assert "kernel:init" in text
        assert "modeled" in text
        assert "counters:" in text

    def test_numpy_scalars_json_safe(self):
        t = Tracer()
        with t.span("s", value=np.int64(3), arr=(np.float64(1.5), 2)):
            pass
        doc = json.dumps(to_chrome_trace(t))  # must not raise
        args = json.loads(doc)["traceEvents"][0]["args"]
        assert args["value"] == 3
        assert args["arr"] == [1.5, 2]


class TestCLI:
    def test_selftest(self, capsys):
        from repro.observe.__main__ import main

        assert main(["--selftest"]) == 0
        assert "selftest: ok" in capsys.readouterr().out

    def test_json_emission_matches_gpu_total(self, tmp_path, capsys):
        from repro.observe.__main__ import main

        out = tmp_path / "trace.json"
        assert main([
            "--backend", "gpu", "--graph", "rmat", "--scale", "tiny",
            "--format", "json", "-o", str(out),
        ]) == 0
        doc = json.loads(out.read_text())
        kernels = [
            e for e in doc["traceEvents"] if e.get("cat") == "gpusim.kernel"
        ]
        assert kernels, "expected one span per kernel launch"
        from repro.core.ecl_cc_gpu import ecl_cc_gpu
        from repro.generators import load

        res = ecl_cc_gpu(load("rmat16.sym", "tiny"))
        assert len(kernels) == len(res.kernels)
        modeled = sum(e["args"]["modeled_ms"] for e in kernels)
        assert modeled == pytest.approx(res.total_time_ms, rel=0.01)

    def test_graph_resolution(self):
        from repro.observe.__main__ import resolve_graph

        assert resolve_graph("rmat") == "rmat16.sym"
        assert resolve_graph("europe_osm") == "europe_osm"
        assert resolve_graph("skitter") == "as-skitter"  # substring
        with pytest.raises(SystemExit):
            resolve_graph("no-such-graph")

    def test_tree_format_stdout(self, capsys):
        from repro.observe.__main__ import main

        assert main([
            "--backend", "numpy", "--graph", "internet", "--format", "tree",
        ]) == 0
        out = capsys.readouterr().out
        assert "cc:numpy" in out
