"""Adversarial schedulers: injection, bit-identity, replay, lost updates."""

import numpy as np
import pytest

from repro.core.api import connected_components
from repro.core.ecl_cc_gpu import ecl_cc_gpu
from repro.gpusim.kernel import GPU
from repro.graph.build import from_edges
from repro.verify import (
    ADVERSARIAL_FAMILIES,
    LostUpdateScheduler,
    ReplayScheduler,
    ScheduleTrace,
    make_scheduler,
    reference_labels,
)


def _contended_graph():
    # Two cliques bridged: plenty of simultaneous hooks on shared roots.
    edges = [(i, j) for i in range(6) for j in range(i + 1, 6)]
    edges += [(6 + i, 6 + j) for i in range(5) for j in range(i + 1, 5)]
    edges += [(2, 8), (12, 13), (13, 14)]
    return from_edges(edges, num_vertices=16, name="contended")


@pytest.fixture(scope="module")
def graph():
    return _contended_graph()


@pytest.fixture(scope="module")
def ref(graph):
    return reference_labels(graph)


class TestAdversarialBitIdentity:
    """Acceptance: backends bit-identical to serial under hostile schedules."""

    @pytest.mark.parametrize("family", ADVERSARIAL_FAMILIES)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_gpu_matches_serial(self, graph, ref, family, seed):
        sched = make_scheduler(family, seed)
        labels = connected_components(graph, backend="gpu", scheduler=sched)
        assert np.array_equal(labels, ref)
        assert sched.trace.num_decisions > 0

    @pytest.mark.parametrize("family", ADVERSARIAL_FAMILIES)
    def test_omp_matches_serial(self, graph, ref, family):
        sched = make_scheduler(family, 5)
        labels = connected_components(graph, backend="omp", scheduler=sched)
        assert np.array_equal(labels, ref)
        assert len(sched.trace.picks) > 0

    @pytest.mark.parametrize("family", ADVERSARIAL_FAMILIES)
    def test_afforest_matches_serial(self, graph, ref, family):
        sched = make_scheduler(family, 5)
        labels = connected_components(graph, backend="afforest", scheduler=sched)
        assert np.array_equal(labels, ref)


class TestSchedulerInjection:
    def test_explicit_seed_none_still_injects(self, graph, ref):
        """Satellite: GPU(seed=None, scheduler=...) must use the scheduler."""
        sched = make_scheduler("random", 11)
        gpu = GPU(seed=None, scheduler=sched)
        assert gpu.scheduler is sched
        res = ecl_cc_gpu(graph, seed=None, scheduler=sched)
        assert np.array_equal(res.labels, ref)
        assert sched.trace.num_decisions > 0

    def test_scheduler_overrides_seed(self, graph, ref):
        a = make_scheduler("random", 3)
        b = make_scheduler("random", 3)
        la = ecl_cc_gpu(graph, seed=123, scheduler=a).labels
        lb = ecl_cc_gpu(graph, seed=None, scheduler=b).labels
        # Same scheduler seed => identical decision streams regardless of
        # the GPU's own (overridden) seed.
        assert a.trace.picks == b.trace.picks
        assert np.array_equal(la, lb)

    def test_unknown_family_raises(self):
        with pytest.raises(ValueError, match="unknown scheduler family"):
            make_scheduler("nope", 0)


class TestReplay:
    @pytest.mark.parametrize("family", ["random", "pct", "targeted", "lostupdate"])
    def test_trace_replays_exactly(self, graph, family):
        rec = make_scheduler(family, 7)
        l1 = ecl_cc_gpu(graph, scheduler=rec).labels
        rep = ReplayScheduler(rec.trace)
        l2 = ecl_cc_gpu(graph, scheduler=rep).labels
        assert np.array_equal(l1, l2)
        # The replay consumed the same decision stream it was given.
        assert rep.trace.picks == rec.trace.picks
        assert rep.trace.drops == rec.trace.drops

    def test_trace_json_roundtrip(self, graph):
        rec = make_scheduler("lostupdate", 9)
        ecl_cc_gpu(graph, scheduler=rec)
        t = rec.trace
        back = ScheduleTrace.from_json(t.to_json())
        assert back.family == t.family
        assert back.seed == t.seed
        assert back.picks == t.picks
        assert back.drops == t.drops
        assert back.launches == t.launches
        assert back.rng_state == t.rng_state
        # rng state is part of the artifact (forensics), picks drive replay.
        assert back.rng_state is not None

    def test_replay_survives_truncation(self, graph):
        rec = make_scheduler("random", 13)
        l1 = ecl_cc_gpu(graph, scheduler=rec).labels
        half = ScheduleTrace.from_dict(rec.trace.to_dict())
        half.picks = half.picks[: len(half.picks) // 2]
        l2 = ecl_cc_gpu(graph, scheduler=ReplayScheduler(half)).labels
        # Truncated replays fall back to round-robin and must still finish
        # with correct labels (the algorithm is schedule-oblivious).
        assert np.array_equal(l1, l2)


class TestLostUpdateInvariance:
    """Acceptance: dropped path-compression stores never change labels."""

    @pytest.mark.parametrize("jump", ["Jump1", "Jump2", "Jump3", "Jump4"])
    @pytest.mark.parametrize("drop_fraction", [0.5, 1.0])
    def test_labels_invariant(self, graph, ref, jump, drop_fraction):
        sched = LostUpdateScheduler(17, drop_fraction=drop_fraction)
        res = ecl_cc_gpu(graph, jump=jump, scheduler=sched)
        assert np.array_equal(res.labels, ref)
        if jump != "Jump3" and drop_fraction == 1.0:
            # Jump1/2/4 do emit compression stores; with fraction 1.0 the
            # injector must actually have dropped some, or it tested nothing.
            assert sum(sched.trace.drops) > 0

    def test_jump3_emits_no_compression_stores(self, graph):
        sched = LostUpdateScheduler(17, drop_fraction=1.0)
        ecl_cc_gpu(graph, jump="Jump3", scheduler=sched)
        # Pure-traversal find: nothing to drop in the compute kernels.
        assert sum(sched.trace.drops) == 0

    def test_drops_confined_to_parent_and_compute(self, graph):
        # The worklist and init/finalize stores must never be dropped:
        # final labels would be garbage, not a benign race.  Indirect
        # check: even at fraction 1.0 the run stays correct for every fini.
        for fini in ("Fini1", "Fini2", "Fini3"):
            sched = LostUpdateScheduler(23, drop_fraction=1.0)
            res = ecl_cc_gpu(graph, fini=fini, scheduler=sched)
            assert np.array_equal(res.labels, reference_labels(graph))
