"""Tests for the sharded multi-process backend (``repro.shard``).

Covers the partitioners, the shared-memory CSR transport (round-trip,
pickling, leak guard), bit-identity of the partition-then-merge pipeline
against the serial oracle (inline and real process pools), metamorphic
invariants (shard-count and vertex-permutation invariance), adversarial
partitions (all edges crossing, empty shards, isolated-vertex shards),
and worker-crash recovery through the fault injector — including the
no-leaked-``/dev/shm``-segments regression check.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro import connected_components
from repro.errors import GraphValidationError
from repro.generators import load
from repro.graph.build import empty_graph, from_edges
from repro.graph.csr import CSRGraph, SharedGraphHandle, leaked_shared_segments
from repro.resilience import FaultPlan, FaultSpec
from repro.shard import (
    PARTITIONERS,
    ShardPlan,
    ShardedExecutor,
    make_plan,
    merge_boundary,
    partition_degree,
    partition_range,
    sharded_cc,
    solve_shard_local,
)
from repro.verify import reference_labels
from repro.verify.metamorphic import permute_vertices

GRAPHS = ["2d-2e20.sym", "rmat16.sym", "USA-road-d.NY", "internet"]


def random_graph(rng, n_max=300):
    n = int(rng.integers(2, n_max))
    edges = rng.integers(0, n, size=(int(rng.integers(0, 3 * n)), 2))
    return from_edges(edges, num_vertices=n)


# ----------------------------------------------------------------------
# Partitioners
# ----------------------------------------------------------------------
class TestPartitioners:
    def test_range_even_split(self):
        plan = partition_range(10, 4)
        assert plan.kind == "range"
        assert plan.starts.tolist() == [0, 3, 5, 8, 10]
        assert plan.num_shards == 4 and plan.num_vertices == 10
        assert plan.ranges() == [(0, 3), (3, 5), (5, 8), (8, 10)]

    def test_range_more_shards_than_vertices(self):
        plan = partition_range(2, 5)
        assert plan.starts[0] == 0 and plan.starts[-1] == 2
        assert sum(e - s for s, e in plan.ranges()) == 2  # covers, some empty

    def test_degree_balances_arcs(self):
        # A hub star plus a long path: equal-vertex splitting puts the
        # whole star (most arcs) in one shard; the degree partitioner
        # must cut by arc mass instead.
        edges = [(0, i) for i in range(1, 50)]  # hub 0, degree 49
        edges += [(i, i + 1) for i in range(50, 60)]
        g = from_edges(np.array(edges))
        plan = partition_degree(g, 2)
        assert plan.kind == "degree"
        arcs = [int(g.row_ptr[e] - g.row_ptr[s]) for s, e in plan.ranges()]
        assert max(arcs) < g.num_arcs  # the hub shard does not take all
        # Balanced within one row's degree of the ideal.
        assert abs(arcs[0] - arcs[1]) <= int(g.degrees().max())

    def test_degree_on_edgeless_graph_falls_back_to_range(self):
        g = empty_graph(8)
        plan = partition_degree(g, 3)
        assert plan.kind == "degree"
        assert plan.starts[-1] == 8

    def test_shard_of_vectorized(self):
        plan = partition_range(10, 4)
        got = plan.shard_of(np.arange(10))
        assert got.tolist() == [0, 0, 0, 1, 1, 2, 2, 2, 3, 3]

    def test_plan_validation(self):
        with pytest.raises(GraphValidationError, match="must be 0"):
            ShardPlan(np.array([1, 5]))
        with pytest.raises(GraphValidationError, match="non-decreasing"):
            ShardPlan(np.array([0, 5, 3]))
        with pytest.raises(GraphValidationError, match="at least 2"):
            ShardPlan(np.array([0]))

    def test_make_plan_dispatch_and_custom_plan(self, two_cliques):
        assert make_plan(two_cliques, 2, "range").kind == "range"
        assert make_plan(two_cliques, 2, "degree").kind == "degree"
        custom = ShardPlan(np.array([0, 4, two_cliques.num_vertices]))
        assert make_plan(two_cliques, 99, custom) is custom
        with pytest.raises(ValueError, match="unknown partitioner"):
            make_plan(two_cliques, 2, "metis")
        wrong = ShardPlan(np.array([0, 3]))
        with pytest.raises(GraphValidationError, match="covers"):
            make_plan(two_cliques, 2, wrong)

    def test_registry(self):
        assert set(PARTITIONERS) == {"range", "degree"}


# ----------------------------------------------------------------------
# Shared-memory transport
# ----------------------------------------------------------------------
class TestSharedMemory:
    def test_round_trip_zero_copy(self):
        g = load("rmat16.sym", "tiny")
        with g.to_shared() as handle:
            assert isinstance(handle, SharedGraphHandle)
            assert handle.nbytes == (g.num_vertices + 1 + g.num_arcs) * 8
            back = CSRGraph.from_shared(handle)
            assert np.array_equal(back.row_ptr, g.row_ptr)
            assert np.array_equal(back.col_idx, g.col_idx)
            # Views over the segment, not copies.
            assert back.row_ptr.base is not None

    def test_handle_pickles_without_shm_object(self):
        g = load("rmat16.sym", "tiny")
        with g.to_shared() as handle:
            clone = pickle.loads(pickle.dumps(handle))
            assert clone.shm_name == handle.shm_name
            assert clone._shm is None  # re-attaches by name, not by object
            back = CSRGraph.from_shared(clone)
            assert np.array_equal(back.col_idx, g.col_idx)
            clone.close()

    def test_empty_graph_round_trip(self):
        g = empty_graph(4)
        with g.to_shared() as handle:
            back = CSRGraph.from_shared(handle)
            assert back.num_vertices == 4 and back.num_arcs == 0

    def test_unlink_idempotent_and_leak_registry(self):
        g = load("rmat16.sym", "tiny")
        handle = g.to_shared()
        assert handle.shm_name in leaked_shared_segments()
        handle.unlink()
        assert handle.shm_name not in leaked_shared_segments()
        handle.unlink()  # second unlink is a no-op, not an error


# ----------------------------------------------------------------------
# Local shard solve + boundary merge building blocks
# ----------------------------------------------------------------------
class TestLocalSolve:
    def test_whole_graph_as_one_shard(self):
        g = load("2d-2e20.sym", "tiny")
        labels, bu, bv = solve_shard_local(g, 0, g.num_vertices)
        assert np.array_equal(labels, reference_labels(g))
        assert bu.size == 0 and bv.size == 0

    def test_boundary_arcs_emitted_once(self):
        # Path 0-1-2-3 split at 2: the crossing edge (1,2) must appear
        # exactly once across the two shards (owned by min endpoint).
        g = from_edges(np.array([(0, 1), (1, 2), (2, 3)]))
        _, bu0, bv0 = solve_shard_local(g, 0, 2)
        _, bu1, bv1 = solve_shard_local(g, 2, 4)
        pairs = list(zip(bu0.tolist(), bv0.tolist())) + list(
            zip(bu1.tolist(), bv1.tolist())
        )
        assert pairs == [(1, 2)]

    def test_empty_shard(self):
        g = load("rmat16.sym", "tiny")
        labels, bu, bv = solve_shard_local(g, 5, 5)
        assert labels.size == 0 and bu.size == 0 and bv.size == 0

    def test_merge_boundary_resolves_global_minimum(self):
        # Two shard-local components joined by one crossing edge.
        labels = np.array([0, 0, 2, 2], dtype=np.int64)
        merged = merge_boundary(labels, np.array([1]), np.array([2]))
        assert merged.tolist() == [0, 0, 0, 0]

    def test_merge_boundary_chain_across_many_shards(self):
        # K singleton "shards" chained 0-1-2-...-9: merge must converge
        # to the global minimum even though each hook only sees roots.
        n = 10
        labels = np.arange(n, dtype=np.int64)
        bu = np.arange(n - 1)
        bv = np.arange(1, n)
        assert merge_boundary(labels, bu, bv).tolist() == [0] * n


# ----------------------------------------------------------------------
# Bit-identity: differential + metamorphic
# ----------------------------------------------------------------------
class TestBitIdentity:
    @pytest.mark.parametrize("name", GRAPHS)
    @pytest.mark.parametrize("partitioner", ["range", "degree"])
    def test_matches_serial_on_suite(self, name, partitioner):
        g = load(name, "tiny")
        expected = reference_labels(g)
        for k in (1, 2, 4, 7):
            res = connected_components(
                g, backend="sharded", workers=k, partitioner=partitioner
            )
            assert np.array_equal(res.labels, expected), (name, partitioner, k)

    def test_shard_count_invariance_random(self):
        # Metamorphic: the labeling is invariant under K — all K produce
        # the identical (canonical min-member) array.
        rng = np.random.default_rng(7)
        for _ in range(10):
            g = random_graph(rng)
            runs = [
                connected_components(
                    g, backend="sharded", workers=k, full_result=False
                )
                for k in (1, 2, 4, 7)
            ]
            for other in runs[1:]:
                assert np.array_equal(runs[0], other)
            assert np.array_equal(runs[0], reference_labels(g))

    def test_vertex_permutation_invariance(self):
        # Metamorphic: relabeling vertices by a permutation and solving
        # sharded yields a partition equivalent to the original's — u, v
        # share a component iff perm[u], perm[v] do.  Since every
        # labeling here is canonical min-member, it is enough to check
        # the permuted graph's sharded labels against the oracle and
        # that component sizes are preserved.
        rng = np.random.default_rng(11)
        for _ in range(5):
            g = random_graph(rng)
            perm = rng.permutation(g.num_vertices)
            pg = permute_vertices(g, perm)
            base = connected_components(
                g, backend="sharded", workers=3, full_result=False
            )
            permuted = connected_components(
                pg, backend="sharded", workers=3, full_result=False
            )
            assert np.array_equal(permuted, reference_labels(pg))
            assert np.array_equal(
                np.sort(np.unique(base, return_counts=True)[1]),
                np.sort(np.unique(permuted, return_counts=True)[1]),
            )

    @pytest.mark.parametrize("backend", ["numpy", "contract", "serial", "fastsv"])
    def test_all_shard_backends_agree(self, backend):
        g = load("rmat16.sym", "tiny")
        res = connected_components(
            g, backend="sharded", workers=3, shard_backend=backend
        )
        assert np.array_equal(res.labels, reference_labels(g))

    def test_empty_and_single_vertex(self):
        assert sharded_cc(empty_graph(0), workers=2).labels.size == 0
        assert sharded_cc(empty_graph(1), workers=2).labels.tolist() == [0]


# ----------------------------------------------------------------------
# Adversarial partitions
# ----------------------------------------------------------------------
class TestAdversarialPartitions:
    def test_all_edges_crossing(self):
        # Complete bipartite graph between even and odd halves, split so
        # every single edge crosses the shard boundary: local solves see
        # only singletons and the merge does all the work.
        lo = np.arange(0, 8)
        hi = np.arange(8, 16)
        edges = np.array([(a, b) for a in lo for b in hi])
        g = from_edges(edges)
        plan = ShardPlan(np.array([0, 8, 16]))
        res = connected_components(g, backend="sharded", partitioner=plan)
        assert res.stats.boundary_edges == 64
        assert np.array_equal(res.labels, reference_labels(g))

    def test_empty_shards(self):
        # More shards than vertices: the trailing shards are empty.
        g = from_edges(np.array([(0, 1), (1, 2)]))
        res = connected_components(g, backend="sharded", workers=7)
        assert res.stats.num_shards == 7
        assert np.array_equal(res.labels, reference_labels(g))
        # And an explicitly degenerate plan with interior empty shards.
        plan = ShardPlan(np.array([0, 1, 1, 1, 3, 3, 3]))
        res = connected_components(g, backend="sharded", partitioner=plan)
        assert np.array_equal(res.labels, reference_labels(g))

    def test_isolated_vertex_shards(self):
        # Isolated vertices sharded alone must stay their own
        # components and not be absorbed by the merge.
        edges = np.array([(0, 1), (4, 5)])
        g = from_edges(edges, num_vertices=8)  # 2, 3, 6, 7 isolated
        plan = ShardPlan(np.array([0, 2, 3, 4, 6, 7, 8]))
        res = connected_components(g, backend="sharded", partitioner=plan)
        assert np.array_equal(res.labels, reference_labels(g))
        assert res.labels[2] == 2 and res.labels[7] == 7


# ----------------------------------------------------------------------
# Real process pools
# ----------------------------------------------------------------------
class TestProcessPool:
    def test_bit_identity_with_processes(self):
        g = load("2d-2e20.sym", "tiny")
        res = connected_components(
            g, backend="sharded", workers=3, force_processes=True
        )
        assert res.stats.mode == "processes"
        assert np.array_equal(res.labels, reference_labels(g))
        assert leaked_shared_segments() == []

    def test_executor_reuse_is_stable(self):
        g = load("rmat16.sym", "tiny")
        expected = reference_labels(g)
        with ShardedExecutor(g, workers=2, force_processes=True) as ex:
            for _ in range(3):
                assert np.array_equal(ex.run().labels, expected)
        assert leaked_shared_segments() == []

    def test_inline_below_min_parallel(self):
        g = load("rmat16.sym", "tiny")
        res = connected_components(g, backend="sharded", workers=4)
        assert res.stats.mode == "inline"  # tiny graphs never fork

    def test_spans_and_gauges(self):
        from repro.observe import Tracer

        g = load("rmat16.sym", "tiny")
        with Tracer() as t:
            connected_components(
                g, backend="sharded", workers=2, force_processes=True
            )
        names = [s.name for s in t.spans]
        assert "shard:partition" in names
        assert names.count("shard:worker") == 2
        assert "shard:merge" in names
        # Child-process spans are folded under the worker spans.
        workers = [s for s in t.spans if s.name == "shard:worker"]
        folded = [s for s in t.spans if s.parent in {w.index for w in workers}]
        assert any(s.name.startswith("cc:") for s in folded)
        gauge_names = {g_[1] for g_ in t.gauges}
        assert {"shard.vertices.0", "shard.arcs.1", "shard.boundary.0",
                "shard.boundary_edges"} <= gauge_names

    def test_invalid_options(self, two_cliques):
        with pytest.raises(ValueError, match="shard_backend"):
            sharded_cc(two_cliques, shard_backend="gpu")
        with pytest.raises(ValueError, match="workers"):
            sharded_cc(two_cliques, workers=0)


# ----------------------------------------------------------------------
# Worker crashes: resilience semantics + shm cleanup regression
# ----------------------------------------------------------------------
class TestWorkerCrashRecovery:
    def plan(self, attempt, shard=0):
        return FaultPlan(
            faults=[
                FaultSpec(
                    kind="worker_crash",
                    backend="sharded",
                    attempt=attempt,
                    at=shard,
                )
            ]
        )

    def test_transient_crash_retries(self):
        g = load("rmat16.sym", "tiny")
        res = connected_components(
            g,
            backend="sharded",
            workers=3,
            force_processes=True,
            fault_plan=self.plan(attempt=0, shard=1),
        )
        assert np.array_equal(res.labels, reference_labels(g))
        assert res.recovery is not None
        assert res.recovery.retries == 1 and res.recovery.fallbacks == 0
        kinds = [a.error_kind for a in res.recovery.attempts if a.status == "fault"]
        assert kinds == ["worker_crash"]

    def test_persistent_crash_falls_back_inline(self):
        g = load("rmat16.sym", "tiny")
        res = connected_components(
            g,
            backend="sharded",
            workers=2,
            force_processes=True,
            fault_plan=self.plan(attempt=-1),  # crashes every attempt
        )
        assert np.array_equal(res.labels, reference_labels(g))
        assert res.recovery.retries == 1 and res.recovery.fallbacks == 1
        final = res.recovery.attempts[-1]
        assert final.status == "ok" and final.resumed  # inline recompute

    def test_clean_run_has_no_recovery(self):
        g = load("rmat16.sym", "tiny")
        res = connected_components(
            g, backend="sharded", workers=2, force_processes=True
        )
        assert res.recovery is None

    def test_no_leaked_segments_after_crashes(self):
        # Regression: a crashed worker must not leave /dev/shm segments
        # behind — the executor owns them and frees on close.
        g = load("rmat16.sym", "tiny")
        for _ in range(3):
            connected_components(
                g,
                backend="sharded",
                workers=2,
                force_processes=True,
                fault_plan=self.plan(attempt=-1),
            )
        assert leaked_shared_segments() == []

    def test_crash_counter_visible_in_trace(self):
        from repro.observe import Tracer

        g = load("rmat16.sym", "tiny")
        with Tracer() as t:
            connected_components(
                g,
                backend="sharded",
                workers=2,
                force_processes=True,
                fault_plan=self.plan(attempt=0),
            )
        assert t.counters.get("shard.worker_faults") == 1
