"""Property-based wall around the external-memory path (hypothesis).

For arbitrary random graphs, any shard count, and any feasible memory
budget — including pathologically tiny ones that force maximal shard
counts and minimal merge chunks — the out-of-core labels must be
bit-identical to the serial oracle, and invariant under vertex
permutation (the metamorphic check the rest of the suite uses).
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.api import connected_components
from repro.core.ecl_cc_serial import ecl_cc_serial
from repro.graph.build import from_edges
from repro.outofcore import min_feasible_budget, oocore_cc
from repro.verify import check_permutation

# Spilling + streaming is I/O per example: keep example counts modest
# and let single slow examples through.
OOC = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graphs(draw, max_n=48, max_m=160):
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=m,
            max_size=m,
        )
    )
    return from_edges(edges, num_vertices=n)


@given(graphs(), st.sampled_from([1, 2, 4, 7]))
@OOC
def test_oocore_matches_serial_any_shard_count(g, shards):
    oracle, _ = ecl_cc_serial(g)
    labels, stats, _ = oocore_cc(g, shards=shards)
    assert np.array_equal(labels, oracle)
    assert stats.num_shards == shards


@given(graphs(), st.integers(min_value=0, max_value=4))
@OOC
def test_oocore_matches_serial_under_any_feasible_budget(g, slack_shift):
    """Budgets from the exact feasibility floor (maximal shard count,
    minimal merge chunk, the most merge passes) up to generous, all
    produce oracle labels with the charged peak under budget."""
    oracle, _ = ecl_cc_serial(g)
    budget = min_feasible_budget(g) << slack_shift
    labels, stats, _ = oocore_cc(g, memory_budget=budget)
    assert np.array_equal(labels, oracle)
    assert stats.peak_resident_bytes <= budget


@given(graphs(max_n=32, max_m=96), st.sampled_from([2, 3, 5]))
@OOC
def test_oocore_permutation_invariance(g, shards):
    """Relabeling vertices then solving out-of-core equals solving then
    relabeling — the streamer has no vertex-order bias."""

    def run(graph):
        return connected_components(
            graph, backend="oocore", shards=shards, full_result=False
        )

    assert check_permutation(run, g, np.random.default_rng(42)) is None


@given(graphs(max_n=32, max_m=96))
@OOC
def test_oocore_agrees_across_partitioners(g):
    """Range and degree cuts of the same graph give identical labels."""
    a, _, _ = oocore_cc(g, shards=3, partitioner="range")
    b, _, _ = oocore_cc(g, shards=3, partitioner="degree")
    assert np.array_equal(a, b)
