"""Tests for incremental (online) connectivity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.verify import reference_labels
from repro.extensions.incremental import IncrementalConnectivity
from repro.graph.build import from_edges


class TestBasics:
    def test_initially_all_singletons(self):
        inc = IncrementalConnectivity(5)
        assert inc.num_components == 5
        assert not inc.connected(0, 1)

    def test_add_edge_merges(self):
        inc = IncrementalConnectivity(4)
        assert inc.add_edge(0, 3)
        assert inc.connected(0, 3)
        assert inc.num_components == 3

    def test_duplicate_edge_returns_false(self):
        inc = IncrementalConnectivity(4)
        assert inc.add_edge(1, 2)
        assert not inc.add_edge(2, 1)
        assert inc.num_components == 3
        assert inc.num_edges_added == 2

    def test_component_of_is_min_member(self):
        inc = IncrementalConnectivity(10)
        inc.add_edge(7, 9)
        inc.add_edge(9, 4)
        assert inc.component_of(7) == 4
        inc.add_edge(4, 2)
        assert inc.component_of(9) == 2

    def test_labels_snapshot_matches_batch(self):
        edges = [(0, 1), (2, 3), (3, 4), (6, 7)]
        g = from_edges(edges, num_vertices=8)
        inc = IncrementalConnectivity(8)
        for u, v in edges:
            inc.add_edge(u, v)
        assert np.array_equal(inc.labels(), reference_labels(g))

    def test_from_graph(self, two_cliques):
        inc = IncrementalConnectivity.from_graph(two_cliques)
        assert inc.num_components == 2
        assert np.array_equal(inc.labels(), reference_labels(two_cliques))

    def test_bounds_checked(self):
        inc = IncrementalConnectivity(3)
        with pytest.raises(IndexError):
            inc.add_edge(0, 3)
        with pytest.raises(IndexError):
            inc.connected(-1, 0)
        with pytest.raises(IndexError):
            inc.component_of(5)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            IncrementalConnectivity(-1)
        with pytest.raises(ValueError):
            IncrementalConnectivity(3, compression="bogus")

    @pytest.mark.parametrize("compression", ["none", "single", "full", "halving"])
    def test_compression_variants(self, compression):
        inc = IncrementalConnectivity(6, compression=compression)
        for u, v in [(5, 4), (4, 3), (3, 2), (0, 1)]:
            inc.add_edge(u, v)
        assert inc.labels().tolist() == [0, 0, 2, 2, 2, 2]


@given(
    st.integers(min_value=1, max_value=25).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                max_size=60,
            ),
        )
    )
)
@settings(max_examples=60, deadline=None)
def test_incremental_matches_batch_at_every_prefix(args):
    n, pairs = args
    pairs = [(u, v) for u, v in pairs if u != v]
    inc = IncrementalConnectivity(n)
    for i, (u, v) in enumerate(pairs):
        merged = inc.add_edge(u, v)
        assert merged == (inc.connected(u, v) and merged)  # tautology guard
    g = from_edges(pairs, num_vertices=n)
    assert np.array_equal(inc.labels(), reference_labels(g))
    assert inc.num_components == np.unique(inc.labels()).size
