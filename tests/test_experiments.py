"""Tests for the experiment harness (run on tiny inputs for speed)."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import EXPERIMENTS, get_experiment, run_experiment
from repro.experiments.report import ExperimentReport, geometric_mean

TINY = dict(scale="tiny", names=["internet", "rmat16.sym"], repeats=1)


class TestReport:
    def test_add_row_checks_width(self):
        r = ExperimentReport("x", "t", ["a", "b"])
        r.add_row(1, 2)
        with pytest.raises(ValueError):
            r.add_row(1, 2, 3)

    def test_geomean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])

    def test_compute_geomean_skips_na(self):
        r = ExperimentReport("x", "t", ["g", "v"])
        r.add_row("a", 2.0)
        r.add_row("b", None)
        r.add_row("c", 8.0)
        r.compute_geomean()
        assert r.geomean_row[1] == pytest.approx(4.0)

    def test_render_contains_all_cells(self):
        r = ExperimentReport("x", "Title", ["g", "v"])
        r.add_row("graphname", 1.5)
        text = r.render()
        assert "Title" in text and "graphname" in text and "1.500" in text

    def test_as_dict(self):
        r = ExperimentReport("x", "t", ["g"])
        r.add_row("a")
        d = r.as_dict()
        assert d["experiment_id"] == "x"
        assert d["rows"] == [["a"]]


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {
            "table2", "fig07", "fig08", "fig09", "fig10", "table3", "table4",
            "fig11", "table5", "fig12", "table6", "fig13", "table7",
            "fig14", "table8", "fig15", "table9", "fig16", "table10", "fig17",
        }
        assert expected <= set(EXPERIMENTS)
        assert "workchar" in EXPERIMENTS  # beyond-paper extra

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            get_experiment("fig99")

    def test_run_experiment_dispatch(self):
        rep = run_experiment("table2", **TINY)
        assert rep.experiment_id == "table2"
        assert len(rep.rows) == 2


class TestExperimentRunners:
    @pytest.mark.parametrize("exp_id", ["fig07", "fig08", "fig09"])
    def test_variant_figures(self, exp_id):
        rep = run_experiment(exp_id, **TINY)
        assert len(rep.rows) == 2
        assert rep.geomean_row is not None
        # The reference column is identically 1.0.
        ref_col = rep.columns.index(next(c for c in rep.columns if "ECL-CC" in c))
        assert all(row[ref_col] == 1.0 for row in rep.rows)

    def test_fig10_percentages_sum_to_100(self):
        rep = run_experiment("fig10", **TINY)
        for row in rep.rows:
            assert sum(row[1:]) == pytest.approx(100.0, abs=0.5)

    def test_table3_has_six_ratio_columns(self):
        rep = run_experiment("table3", **TINY)
        assert len(rep.columns) == 7
        assert all(isinstance(v, float) for v in rep.rows[0][1:])

    def test_table4_reports_paths(self):
        rep = run_experiment("table4", **TINY)
        for row in rep.rows:
            assert row[1] >= 0.0
            assert row[2] >= row[1]

    def test_fig11_and_table5_consistent(self):
        fig = run_experiment("fig11", **TINY)
        tab = run_experiment("table5", **TINY)
        assert [r[0] for r in fig.rows] == [r[0] for r in tab.rows]
        # Relative value = absolute / ECL absolute (both tables round
        # their cells, so allow a few percent of rounding slack).
        for frow, trow in zip(fig.rows, tab.rows):
            ecl = trow[1]
            assert frow[1] == pytest.approx(trow[2] / ecl, rel=0.1)

    def test_fig12_runs_on_k40(self):
        rep = run_experiment("fig12", **TINY)
        assert rep.geomean_row is not None

    def test_fig13_parallel_cpu(self):
        rep = run_experiment("fig13", **TINY)
        assert "CRONO" in rep.columns
        assert rep.geomean_row is not None

    def test_fig15_serial_cpu(self):
        rep = run_experiment("fig15", **TINY)
        assert {"Galois", "Boost", "Lemon", "igraph"} <= set(rep.columns)

    def test_fig17_orders_codes(self):
        rep = run_experiment("fig17", **TINY)
        values = [row[1] for row in rep.rows]
        assert values == sorted(values)
        codes = [row[0] for row in rep.rows]
        assert "ECL-CC (GPU)" in codes

    def test_cli_main(self, capsys):
        from repro.experiments.__main__ import main

        rc = main(["table2", "--scale", "tiny", "--names", "internet"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "table2" in out and "internet" in out


class TestRunnerHelpers:
    def test_median_of(self):
        from repro.experiments.runner import median_of

        values = iter([5.0, 1.0, 3.0])
        assert median_of(lambda: next(values), repeats=3) == 3.0
        with pytest.raises(ValueError):
            median_of(lambda: 1.0, repeats=0)

    def test_device_for_scales_l2(self):
        from repro.experiments.runner import device_for, suite_graphs
        from repro.gpusim.device import TITAN_X

        g = suite_graphs("tiny", ["internet"])[0]
        dev = device_for(g, TITAN_X)
        assert dev.l2_bytes < TITAN_X.l2_bytes
        assert dev.l1_bytes == TITAN_X.l1_bytes

    def test_suite_graphs_order(self):
        from repro.experiments.runner import suite_graphs
        from repro.generators.suite import suite_names

        graphs = suite_graphs("tiny")
        assert [g.name for g in graphs] == suite_names()


class TestScalingExperiment:
    def test_linear_in_arcs_within_family(self):
        rep = run_experiment("scaling", scale="tiny", names=["grid"])
        assert len(rep.rows) == 2
        per_marc = [row[5] for row in rep.rows]
        # Linear work: cost per arc within 3x across a 4x size step.
        assert max(per_marc) < 3 * min(per_marc)
