"""Tests for networkx / scipy.sparse interop."""

import networkx as nx
import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph.build import from_edges
from repro.graph.convert import (
    from_networkx,
    from_scipy_sparse,
    to_networkx,
    to_scipy_sparse,
)
from repro.graph.validate import validate_undirected


class TestNetworkx:
    def test_round_trip(self):
        g = from_edges([(0, 1), (1, 2), (3, 4)], num_vertices=6)
        nxg = to_networkx(g)
        assert nxg.number_of_nodes() == 6
        assert nxg.number_of_edges() == 3
        back = from_networkx(nxg)
        assert back.num_edges == g.num_edges
        assert back.num_vertices == g.num_vertices

    def test_from_directed_networkx(self):
        d = nx.DiGraph()
        d.add_edges_from([(0, 1), (1, 0), (1, 2)])
        g = from_networkx(d)
        validate_undirected(g)
        assert g.num_edges == 2

    def test_isolated_nodes_survive(self):
        nxg = nx.Graph()
        nxg.add_nodes_from(range(4))
        nxg.add_edge(0, 1)
        g = from_networkx(nxg)
        assert g.num_vertices == 4

    def test_empty_graph(self):
        g = from_networkx(nx.Graph())
        assert g.num_vertices == 0


class TestScipySparse:
    def test_round_trip(self):
        g = from_edges([(0, 1), (2, 3)], num_vertices=4)
        m = to_scipy_sparse(g)
        assert m.shape == (4, 4)
        assert m.nnz == g.num_arcs
        back = from_scipy_sparse(m)
        assert back.num_edges == g.num_edges

    def test_matrix_is_symmetric(self):
        g = from_edges([(0, 1), (1, 2)])
        m = to_scipy_sparse(g)
        assert (m != m.T).nnz == 0

    def test_from_asymmetric_pattern(self):
        m = sp.coo_matrix((np.ones(1), ([0], [2])), shape=(3, 3))
        g = from_scipy_sparse(m)
        validate_undirected(g)
        assert g.num_edges == 1
