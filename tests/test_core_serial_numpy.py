"""Tests for ECL-CC_SER and the vectorized NumPy backend."""

import numpy as np
import pytest

from repro.core.ecl_cc_numpy import ecl_cc_numpy
from repro.core.ecl_cc_serial import ecl_cc_serial
from repro.core.variants import INIT_VARIANTS, finalize, init_vectorized
from repro.verify import reference_labels
from repro.generators import load_suite
from repro.graph.build import empty_graph, from_edges
from repro.unionfind.variants import FIND_VARIANTS

ALL_JUMPS = tuple(FIND_VARIANTS)
ALL_INITS = tuple(INIT_VARIANTS)


class TestSerial:
    def test_known_graph(self, triangle_plus_edge):
        labels, _ = ecl_cc_serial(triangle_plus_edge)
        assert labels.tolist() == [0, 0, 0, 3, 3, 5]

    @pytest.mark.parametrize("jump", ALL_JUMPS)
    def test_jump_variants_agree(self, two_cliques, jump):
        labels, _ = ecl_cc_serial(two_cliques, jump=jump)
        assert np.array_equal(labels, reference_labels(two_cliques))

    @pytest.mark.parametrize("init", ALL_INITS)
    def test_init_variants_agree(self, path_graph, init):
        labels, _ = ecl_cc_serial(path_graph, init=init)
        assert np.array_equal(labels, reference_labels(path_graph))

    @pytest.mark.parametrize("fini", ("Fini1", "Fini2", "Fini3"))
    def test_fini_variants_agree(self, star_graph, fini):
        labels, _ = ecl_cc_serial(star_graph, fini=fini)
        assert np.array_equal(labels, reference_labels(star_graph))

    def test_empty_graph(self):
        labels, _ = ecl_cc_serial(empty_graph(0))
        assert labels.size == 0

    def test_isolated_vertices(self, isolated_graph):
        labels, _ = ecl_cc_serial(isolated_graph)
        assert labels.tolist() == [0, 1, 2, 3, 4]

    def test_suite_tiny(self):
        for g in load_suite("tiny"):
            labels, _ = ecl_cc_serial(g)
            assert np.array_equal(labels, reference_labels(g)), g.name

    def test_stats_collection(self, two_cliques):
        # Init1 starts every vertex as its own component, forcing hooks.
        labels, stats = ecl_cc_serial(two_cliques, init="Init1", collect_stats=True)
        assert stats is not None
        assert stats.hooks >= 1
        assert stats.finds > 0
        assert stats.path_stats.num_finds == stats.finds

    def test_no_stats_by_default(self, two_cliques):
        _, stats = ecl_cc_serial(two_cliques)
        assert stats is None

    def test_invalid_variants(self, path_graph):
        with pytest.raises(ValueError):
            ecl_cc_serial(path_graph, init="Init9")
        with pytest.raises(ValueError):
            ecl_cc_serial(path_graph, jump="sideways")
        with pytest.raises(ValueError):
            ecl_cc_serial(path_graph, fini="Fini9")


class TestNumpyBackend:
    def test_known_graph(self, triangle_plus_edge):
        labels, _ = ecl_cc_numpy(triangle_plus_edge)
        assert labels.tolist() == [0, 0, 0, 3, 3, 5]

    @pytest.mark.parametrize("init", ALL_INITS)
    def test_init_variants(self, two_cliques, init):
        labels, _ = ecl_cc_numpy(two_cliques, init=init)
        assert np.array_equal(labels, reference_labels(two_cliques))

    def test_empty(self):
        labels, _ = ecl_cc_numpy(empty_graph(0))
        assert labels.size == 0

    def test_edgeless(self, isolated_graph):
        labels, _ = ecl_cc_numpy(isolated_graph)
        assert labels.tolist() == [0, 1, 2, 3, 4]

    def test_suite_small(self):
        for g in load_suite("small"):
            labels, _ = ecl_cc_numpy(g)
            assert np.array_equal(labels, reference_labels(g)), g.name

    def test_stats_reported(self, path_graph):
        _, stats = ecl_cc_numpy(path_graph)
        assert stats.doubling_passes >= 1
        # Init3 collapses a path in one hooking round at most.
        assert stats.hook_rounds <= 1

    def test_matches_serial_on_random(self):
        rng = np.random.default_rng(42)
        for _ in range(10):
            n = int(rng.integers(2, 60))
            m = int(rng.integers(0, 3 * n))
            edges = rng.integers(0, n, size=(m, 2))
            g = from_edges(edges, num_vertices=n)
            a, _ = ecl_cc_numpy(g)
            b, _ = ecl_cc_serial(g)
            assert np.array_equal(a, b)


class TestInitVectorized:
    @pytest.mark.parametrize("variant", ALL_INITS)
    def test_matches_scalar(self, two_cliques, variant):
        scalar = np.array(
            [INIT_VARIANTS[variant](two_cliques, v) for v in range(two_cliques.num_vertices)]
        )
        vec = init_vectorized(two_cliques, variant)
        assert np.array_equal(scalar, vec)

    def test_init3_uses_first_not_min(self):
        # Vertex 3's adjacency is sorted [0, 1, 2]; first smaller is 0 for
        # both Init2 and Init3 here, so craft a case via CSR directly:
        g = from_edges([(3, 2), (3, 1)])
        # builder sorts adjacency: neighbors(3) == [1, 2] -> first smaller = 1
        vec = init_vectorized(g, "Init3")
        assert vec[3] == 1
        assert init_vectorized(g, "Init2")[3] == 1

    def test_unknown_variant(self, path_graph):
        with pytest.raises(ValueError):
            init_vectorized(path_graph, "Init0")


class TestFinalize:
    def test_flattens_chain(self):
        parent = np.array([0, 0, 1, 2, 3], dtype=np.int64)
        for variant in ("Fini1", "Fini2", "Fini3"):
            p = parent.copy()
            finalize(p, variant)
            assert p.tolist() == [0, 0, 0, 0, 0]

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            finalize(np.zeros(1, dtype=np.int64), "Fini0")
