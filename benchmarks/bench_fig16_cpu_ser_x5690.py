"""Fig. 16 — serial CPU comparison, X5690.

Regenerates the paper artifact 'fig16' through the experiment registry;
the benchmark value is the wall time of the full regeneration.
"""

from .conftest import run_and_archive


def test_fig16(benchmark, bench_scale, bench_names, bench_repeats):
    report = run_and_archive(benchmark, "fig16", bench_scale, bench_names, bench_repeats)
    assert report.rows, "experiment produced no rows"
