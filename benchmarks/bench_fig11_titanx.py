"""Fig. 11 — GPU comparison, Titan X (normalized).

Regenerates the paper artifact 'fig11' through the experiment registry;
the benchmark value is the wall time of the full regeneration.
"""

from .conftest import run_and_archive


def test_fig11(benchmark, bench_scale, bench_names, bench_repeats):
    report = run_and_archive(benchmark, "fig11", bench_scale, bench_names, bench_repeats)
    assert report.rows, "experiment produced no rows"
