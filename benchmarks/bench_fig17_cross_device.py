"""Fig. 17 — geomean runtime across devices.

Regenerates the paper artifact 'fig17' through the experiment registry;
the benchmark value is the wall time of the full regeneration.
"""

from .conftest import run_and_archive


def test_fig17(benchmark, bench_scale, bench_names, bench_repeats):
    report = run_and_archive(benchmark, "fig17", bench_scale, bench_names, bench_repeats)
    assert report.rows, "experiment produced no rows"
