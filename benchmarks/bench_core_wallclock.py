"""Native wall-clock benchmarks of the library itself (multi-round).

Unlike the experiment benches (which regenerate paper artifacts once),
these are ordinary pytest-benchmark microbenchmarks of the public API:
the vectorized backend on medium graphs, the serial backend, the
disjoint-set primitives, and graph construction — the numbers a user of
this library as a *library* cares about.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.fastsv import fastsv_cc
from repro.core.ecl_cc_numpy import ecl_cc_numpy, ecl_cc_numpy_dense
from repro.core.ecl_cc_serial import ecl_cc_serial
from repro.generators import load, rmat
from repro.graph.build import from_arc_arrays
from repro.unionfind import DisjointSet


@pytest.fixture(scope="module")
def medium_rmat():
    return load("rmat16.sym", "medium")


@pytest.fixture(scope="module")
def medium_road():
    return load("USA-road-d.NY", "medium")


@pytest.fixture(scope="module")
def medium_grid():
    return load("2d-2e20.sym", "medium")


def test_numpy_backend_rmat(benchmark, medium_rmat):
    labels = benchmark(lambda: ecl_cc_numpy(medium_rmat)[0])
    assert labels.size == medium_rmat.num_vertices


def test_numpy_backend_road(benchmark, medium_road):
    labels = benchmark(lambda: ecl_cc_numpy(medium_road)[0])
    assert np.all(labels == labels[0])  # single component


# Frontier vs dense: same rounds with and without the shrinking
# frontier, on the input classes where the difference matters most
# (a high-diameter mesh and a low-diameter scale-free graph).

def test_numpy_frontier_grid(benchmark, medium_grid):
    labels = benchmark(lambda: ecl_cc_numpy(medium_grid)[0])
    assert np.all(labels == labels[0])


def test_numpy_dense_grid(benchmark, medium_grid):
    labels = benchmark(lambda: ecl_cc_numpy_dense(medium_grid)[0])
    assert np.all(labels == labels[0])


def test_numpy_dense_rmat(benchmark, medium_rmat):
    labels = benchmark(lambda: ecl_cc_numpy_dense(medium_rmat)[0])
    assert labels.size == medium_rmat.num_vertices


def test_fastsv_road(benchmark, medium_road):
    labels = benchmark(lambda: fastsv_cc(medium_road)[0])
    assert np.all(labels == labels[0])


def test_serial_backend_small_rmat(benchmark):
    g = load("rmat16.sym", "small")
    labels = benchmark(lambda: ecl_cc_serial(g)[0])
    assert labels.size == g.num_vertices


def test_graph_construction(benchmark):
    rng = np.random.default_rng(0)
    src = rng.integers(0, 50_000, size=400_000)
    dst = rng.integers(0, 50_000, size=400_000)
    g = benchmark(lambda: from_arc_arrays(src, dst, 50_000))
    assert g.num_vertices == 50_000


def test_rmat_generation(benchmark):
    g = benchmark(lambda: rmat(15, 8.0, seed=1))
    assert g.num_vertices == 1 << 15


def test_disjoint_set_unions(benchmark):
    rng = np.random.default_rng(1)
    pairs = rng.integers(0, 20_000, size=(50_000, 2))

    def run():
        ds = DisjointSet(20_000)
        for u, v in pairs:
            ds.union(int(u), int(v))
        return ds.num_sets()

    count = benchmark(run)
    assert count >= 1
