"""Table 3 — L2 accesses of Jump1-3 relative to Jump4.

Regenerates the paper artifact 'table3' through the experiment registry;
the benchmark value is the wall time of the full regeneration.
"""

from .conftest import run_and_archive


def test_table3(benchmark, bench_scale, bench_names, bench_repeats):
    report = run_and_archive(benchmark, "table3", bench_scale, bench_names, bench_repeats)
    assert report.rows, "experiment produced no rows"
