"""Fig. 15 — serial CPU comparison, E5-2687W.

Regenerates the paper artifact 'fig15' through the experiment registry;
the benchmark value is the wall time of the full regeneration.
"""

from .conftest import run_and_archive


def test_fig15(benchmark, bench_scale, bench_names, bench_repeats):
    report = run_and_archive(benchmark, "fig15", bench_scale, bench_names, bench_repeats)
    assert report.rows, "experiment produced no rows"
