"""Table 4 — observed path lengths.

Regenerates the paper artifact 'table4' through the experiment registry;
the benchmark value is the wall time of the full regeneration.
"""

from .conftest import run_and_archive


def test_table4(benchmark, bench_scale, bench_names, bench_repeats):
    report = run_and_archive(benchmark, "table4", bench_scale, bench_names, bench_repeats)
    assert report.rows, "experiment produced no rows"
