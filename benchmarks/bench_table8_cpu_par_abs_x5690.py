"""Table 8 — parallel CPU absolute runtimes, X5690.

Regenerates the paper artifact 'table8' through the experiment registry;
the benchmark value is the wall time of the full regeneration.
"""

from .conftest import run_and_archive


def test_table8(benchmark, bench_scale, bench_names, bench_repeats):
    report = run_and_archive(benchmark, "table8", bench_scale, bench_names, bench_repeats)
    assert report.rows, "experiment produced no rows"
