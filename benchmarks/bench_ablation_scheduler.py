"""Ablation: warp-scheduler interleaving (benign-race manifestation).

The paper argues ECL-CC's data races are benign: any interleaving gives a
correct answer, and the races only affect how much duplicate compression
work happens.  This bench runs ECL-CC under many random warp schedules
and reports the runtime spread — correctness is asserted for every seed,
and the spread quantifies how much the races can cost.
"""

from __future__ import annotations

import numpy as np

from repro.core.ecl_cc_gpu import ecl_cc_gpu
from repro.verify import reference_labels
from repro.experiments.report import ExperimentReport
from repro.experiments.runner import device_for, suite_graphs
from repro.gpusim.device import TITAN_X

from .conftest import REPORT_DIR

SEEDS = list(range(8))


def test_scheduler_seed_sensitivity(benchmark, bench_scale, bench_names, bench_repeats):
    def sweep() -> ExperimentReport:
        report = ExperimentReport(
            "ablation-scheduler",
            "ECL-CC runtime spread over random warp schedules (min/median/max, "
            "relative to deterministic round-robin)",
            ["Graph name", "min", "median", "max"],
        )
        for g in suite_graphs(bench_scale, bench_names):
            dev = device_for(g, TITAN_X)
            ref = reference_labels(g)
            base = ecl_cc_gpu(g, device=dev).total_time_ms
            times = []
            for seed in SEEDS:
                res = ecl_cc_gpu(g, device=dev, seed=seed)
                assert np.array_equal(res.labels, ref), (g.name, seed)
                times.append(res.total_time_ms / base)
            times.sort()
            report.add_row(
                g.name,
                round(times[0], 3),
                round(times[len(times) // 2], 3),
                round(times[-1], 3),
            )
        report.compute_geomean()
        return report

    report = benchmark.pedantic(sweep, rounds=1, iterations=1)
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / f"ablation_scheduler_{bench_scale}.txt").write_text(report.render() + "\n")
    print()
    print(report.render())
