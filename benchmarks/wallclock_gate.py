#!/usr/bin/env python
"""Wall-clock benchmark gate for the frontier-shrinking numpy backend.

Times the current ``ecl_cc_numpy`` against a frozen pre-change snapshot
on the generator suite, measures ``ConnectivityService`` throughput
against the naive recompute-per-mutation baseline under a seeded 90/10
mixed load, verifies every backend's labels bit-for-bit against the
serial reference, and writes ``BENCH_core_wallclock.json`` (schema in
``docs/benchmarks.md``).  Exits nonzero on a label mismatch
always, and on a missed speedup/regression threshold unless enforcement
is disabled.

Typical uses::

    # the full recorded run (the JSON committed at the repo root)
    python benchmarks/wallclock_gate.py --scale medium --repeats 3

    # CI smoke: reduced suite, labels verified, thresholds not enforced
    python benchmarks/wallclock_gate.py --quick --out bench_smoke.json

    # gate only the contraction family (skips the slow legacy/dense legs)
    python benchmarks/wallclock_gate.py --quick --backends contract

    # sharded strong-scaling sweep only, at K=1,2 (e.g. a 2-core CI box)
    python benchmarks/wallclock_gate.py --quick --backends sharded --workers 1,2

    # out-of-core leg under a hard 2 GiB address-space cap, spills kept
    python benchmarks/wallclock_gate.py --quick --backends oocore \\
        --rlimit-as 2G --oocore-spill-dir oocore-spill

    # distributed merge leg only (rounds / bytes-on-wire / recoveries)
    python benchmarks/wallclock_gate.py --quick --backends distributed
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.errors import VerificationError  # noqa: E402
from repro.experiments.wallclock import (  # noqa: E402
    GATE_LEGS,
    check_gate,
    run_wallclock_gate,
    write_gate_json,
)

#: The --quick subset: one high-diameter mesh, one road network, one
#: low-diameter scale-free graph — enough to catch a broken hot path
#: without paying for all 18 inputs.
QUICK_NAMES = ["2d-2e20.sym", "USA-road-d.NY", "rmat16.sym"]
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_core_wallclock.json"


def parse_size(text: str) -> int:
    """``512M`` / ``2G`` / ``1048576`` -> bytes; raises ValueError."""
    m = re.fullmatch(r"(\d+)\s*([kKmMgG]?)", text.strip())
    if not m:
        raise ValueError(f"{text!r} is not a size (expected e.g. 512M or 2G)")
    return int(m.group(1)) * {
        "": 1, "k": 1 << 10, "m": 1 << 20, "g": 1 << 30
    }[m.group(2).lower()]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="medium", help="suite scale")
    parser.add_argument(
        "--names", default="", help="comma-separated subset of suite graphs"
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--backends",
        default="",
        help="comma-separated subset of optional measurement legs "
        f"({', '.join(sorted(GATE_LEGS))}); default all.  The live and "
        "frozen frontier backends are always timed; skipped legs' "
        "columns are simply absent and check_gate treats them as exempt",
    )
    parser.add_argument(
        "--workers",
        default="",
        help="comma-separated worker counts for the sharded strong-scaling "
        "leg (default 1,2,4); positive integers, validated like --backends",
    )
    parser.add_argument(
        "--rlimit-as",
        default="",
        metavar="SIZE",
        help="cap the process address space via resource.RLIMIT_AS before "
        "running (e.g. 512M, 2G) — the kernel, not just the resident "
        "meter, then enforces the out-of-core leg's bounded-memory claim; "
        "POSIX only",
    )
    parser.add_argument(
        "--oocore-spill-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="spill the out-of-core leg into per-graph subdirectories of "
        "DIR instead of temp dirs; the size-ceiling demo's spill (manifest "
        "included) is then kept on disk for artifact upload",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced suite at small scale with thresholds not enforced "
        "(label verification still runs and still fails the gate)",
    )
    parser.add_argument(
        "--enforce-speedup",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="fail on missed speedup/regression thresholds "
        "(default: on, unless --quick)",
    )
    parser.add_argument("--min-speedup", type=float, default=3.0)
    parser.add_argument("--max-regression", type=float, default=0.05)
    parser.add_argument("--min-service-speedup", type=float, default=10.0)
    parser.add_argument(
        "--service-ops",
        type=int,
        default=20_000,
        help="mixed read/write ops per graph for the serving columns "
        "(0 skips them)",
    )
    args = parser.parse_args(argv)

    scale = "small" if args.quick and args.scale == "medium" else args.scale
    names = [n for n in args.names.split(",") if n] or (
        QUICK_NAMES if args.quick else None
    )
    backends = [b for b in args.backends.split(",") if b] or None
    workers = None
    if args.workers:
        try:
            workers = [int(w) for w in args.workers.split(",") if w]
        except ValueError:
            print(
                f"FAIL: --workers {args.workers!r} is not a comma-separated "
                f"list of integers",
                file=sys.stderr,
            )
            return 2
    enforce = (
        not args.quick if args.enforce_speedup is None else args.enforce_speedup
    )
    if args.rlimit_as:
        try:
            import resource
        except ImportError:  # pragma: no cover - non-POSIX
            print(
                "FAIL: --rlimit-as needs the resource module (POSIX only)",
                file=sys.stderr,
            )
            return 2
        try:
            cap = parse_size(args.rlimit_as)
        except ValueError as exc:
            print(f"FAIL: --rlimit-as: {exc}", file=sys.stderr)
            return 2
        resource.setrlimit(resource.RLIMIT_AS, (cap, cap))

    try:
        payload = run_wallclock_gate(
            scale=scale,
            names=names,
            repeats=args.repeats,
            verify=True,
            service_ops=args.service_ops,
            backends=backends,
            workers=workers,
            oocore_spill_dir=args.oocore_spill_dir,
        )
    except VerificationError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 2
    path = write_gate_json(payload, args.out)

    width = max(len(r["name"]) for r in payload["graphs"])
    for row in payload["graphs"]:
        parts = [f"{row['name']:{width}s}"]
        if "before_ms" in row:
            parts.append(
                f"before {row['before_ms']:9.2f} ms  "
                f"speedup {row['speedup']:5.2f}x"
            )
        parts.append(
            f"frontier {row['after_ms']:9.2f} ms  "
            f"frozen {row['frozen_frontier_ms']:9.2f} ms"
        )
        if "contract_ms" in row:
            parts.append(
                f"contract {row['contract_ms']:9.2f} ms  "
                f"best {row['best_backend']:8s} {row['best_speedup']:5.2f}x  "
                f"compiled {row['compiled_speedup']:5.2f}x"
            )
        if "resilient_ms" in row:
            parts.append(
                f"resilient {row['resilient_ms']:9.2f} ms "
                f"({row['supervisor_overhead']:+.1%})"
            )
        if "scaling" in row:
            curve = " ".join(
                f"K{k}={ms:.2f}" for k, ms in row["scaling"].items()
            )
            parts.append(
                f"sharded [{curve}] ms  scaling {row['scaling_speedup']:4.2f}x"
            )
        if "oocore_ms" in row:
            parts.append(
                f"oocore {row['oocore_ms']:9.2f} ms  "
                f"peak {row['oocore_peak_bytes'] / 1e6:7.2f}"
                f"/{row['oocore_budget_bytes'] / 1e6:.2f} MB  "
                f"shards {row['oocore_shards']}"
            )
        if "service_qps" in row:
            parts.append(
                f"service {row['service_qps']:9.0f} q/s "
                f"({row['service_speedup']:6.0f}x naive)"
            )
        if row["high_diameter"]:
            parts.append("[high-diameter]")
        print("  ".join(parts))
    if "oocore_demo" in payload:
        d = payload["oocore_demo"]
        print(
            f"oocore demo: {d['graph']}  csr {d['oocore_csr_bytes'] / 1e6:.2f} "
            f"MB streamed under a {d['oocore_budget_bytes'] / 1e6:.2f} MB "
            f"budget (peak {d['oocore_peak_bytes'] / 1e6:.2f} MB, ceiling "
            f"{d['oocore_ceiling']:.1f}x, {d['oocore_shards']} shards, "
            f"{d['oocore_merge_passes']} merge passes, "
            f"{d['oocore_ms']:.1f} ms)"
        )
    print(f"wrote {path}")

    problems = check_gate(
        payload,
        min_speedup=args.min_speedup,
        max_regression=args.max_regression,
        min_service_speedup=args.min_service_speedup,
    )
    if problems:
        for p in problems:
            print(("FAIL: " if enforce else "note: ") + p, file=sys.stderr)
        if enforce:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
