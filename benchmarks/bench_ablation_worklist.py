"""Ablation: the double-sided worklist (§3).

"To save memory space, ECL-CC utilizes a double-sided worklist of size n"
— the alternative is two separate worklists, each of which must be sized
n to be overflow-safe.  This bench quantifies the memory claim on every
input and verifies the double-sided structure never overflows even when
every vertex is pushed.
"""

from __future__ import annotations

from repro.core.ecl_cc_gpu import ecl_cc_gpu
from repro.experiments.report import ExperimentReport
from repro.experiments.runner import device_for, suite_graphs
from repro.gpusim.device import TITAN_X
from repro.gpusim.kernel import GPU
from repro.gpusim.worklist import DoubleSidedWorklist

from .conftest import REPORT_DIR


def test_worklist_memory_and_occupancy(benchmark, bench_scale, bench_names, bench_repeats):
    def sweep() -> ExperimentReport:
        report = ExperimentReport(
            "ablation-worklist",
            "Double-sided worklist occupancy vs the two-list alternative",
            ["Graph name", "front (kernel2)", "back (kernel3)",
             "double-sided slots", "two-list slots", "memory saved"],
        )
        for g in suite_graphs(bench_scale, bench_names):
            dev = device_for(g, TITAN_X)
            res = ecl_cc_gpu(g, device=dev)
            n = g.num_vertices
            double_sided = n        # one shared array of n slots
            two_lists = 2 * n       # each side must be overflow-safe alone
            report.add_row(
                g.name,
                res.worklist_front,
                res.worklist_back,
                double_sided,
                two_lists,
                f"{100.0 * (two_lists - double_sided) / two_lists:.0f}%",
            )
        return report

    report = benchmark.pedantic(sweep, rounds=1, iterations=1)
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / f"ablation_worklist_{bench_scale}.txt").write_text(report.render() + "\n")
    print()
    print(report.render())


def test_worklist_full_occupancy_no_overflow(benchmark):
    """Pushing all n vertices (any front/back split) must fit exactly."""

    def fill() -> int:
        gpu = GPU(TITAN_X)
        n = 1024
        wl = DoubleSidedWorklist(gpu.memory, n)

        def k(ctx, wl):
            if ctx.global_id >= n:
                return
            if ctx.global_id % 3 == 0:
                yield from wl.g_push_back(ctx.global_id)
            else:
                yield from wl.g_push_front(ctx.global_id)

        gpu.launch(k, n, wl)
        assert wl.front_count + wl.back_count == n
        return wl.front_count

    benchmark.pedantic(fill, rounds=1, iterations=1)
