#!/usr/bin/env python
"""Mixed read/write load-generator benchmark for ConnectivityService.

Seeds a service with ~75% of a suite graph's edges and drives a seeded
90/10 read/write operation stream through it (the held-out edges feed
the insertions, so writes do real merging work), reporting sustained
queries/sec.  The naive recompute-per-mutation baseline is measured over
a capped prefix of the same stream for the speedup column, and the
post-run ``labels_snapshot()`` is differentially verified against the
scipy oracle.

Typical uses::

    # one-shot comparison on the default graphs
    python benchmarks/bench_service_loadgen.py --scale small

    # CI service-smoke: a seeded 30-second sustained burst
    python benchmarks/bench_service_loadgen.py --quick --duration 30 \
        --out service_loadgen.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.loadgen import (  # noqa: E402
    build_ops,
    compare_loadgen,
    run_service_loadgen,
)
from repro.generators import load  # noqa: E402
from repro.service import BatchPolicy  # noqa: E402
from repro.verify import reference_labels  # noqa: E402

import numpy as np  # noqa: E402

DEFAULT_NAMES = ["2d-2e20.sym", "USA-road-d.NY", "rmat16.sym"]
QUICK_NAMES = ["rmat16.sym"]
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_service_loadgen.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="small", help="suite scale")
    parser.add_argument(
        "--names", default="", help="comma-separated subset of suite graphs"
    )
    parser.add_argument("--ops", type=int, default=20_000)
    parser.add_argument("--read-fraction", type=float, default=0.90)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--naive-max-ops", type=int, default=500)
    parser.add_argument("--batch-size", type=int, default=1024)
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="sustained-burst mode: repeat the op stream for this many "
        "seconds per graph (skips the naive baseline)",
    )
    parser.add_argument("--quick", action="store_true", help="single small graph")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    names = [n for n in args.names.split(",") if n] or (
        QUICK_NAMES if args.quick else DEFAULT_NAMES
    )
    policy = BatchPolicy(max_batch_size=args.batch_size)
    rows = []
    for name in names:
        graph = load(name, args.scale)
        if args.duration is not None:
            ops = build_ops(
                graph,
                num_ops=args.ops,
                read_fraction=args.read_fraction,
                seed=args.seed,
            )
            res, svc = run_service_loadgen(
                ops, policy=policy, duration_s=args.duration
            )
            ref = reference_labels(svc.current_graph())
            if not np.array_equal(svc.labels_snapshot(), ref):
                print(f"FAIL: {name}: labels diverged from oracle", file=sys.stderr)
                return 2
            row = {
                "graph": name,
                "num_vertices": graph.num_vertices,
                "mode": "burst",
                "duration_s": round(res.elapsed_s, 2),
                "service_qps": round(res.qps, 1),
                "ops_executed": res.ops_executed,
                "verified": True,
                "service": res.to_dict(),
            }
            print(
                f"{name}: {res.qps:,.0f} q/s sustained over "
                f"{res.elapsed_s:.1f} s ({res.ops_executed:,} ops, verified)"
            )
        else:
            row = compare_loadgen(
                graph,
                num_ops=args.ops,
                read_fraction=args.read_fraction,
                seed=args.seed,
                policy=policy,
                naive_max_ops=args.naive_max_ops,
            )
            print(
                f"{name}: service {row['service_qps']:,.0f} q/s, "
                f"naive {row['naive_qps']:,.1f} q/s "
                f"({row['service_speedup']:,.0f}x, verified)"
            )
        rows.append(row)

    payload = {
        "benchmark": "service_loadgen",
        "scale": args.scale,
        "read_fraction": args.read_fraction,
        "seed": args.seed,
        "graphs": rows,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
