"""Beyond-paper benchmarks: Afforest and FastSV against ECL-CC.

Afforest (2018) and FastSV (2020) are the closest successors to ECL-CC;
this bench positions them on the same suite.  Afforest runs on the same
simulated device as ECL-CC (modeled ms); FastSV and the numpy backend
are native vectorized codes (wall ms) and are compared to each other.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.fastsv import fastsv_cc
from repro.core.ecl_cc_gpu import ecl_cc_gpu
from repro.core.ecl_cc_numpy import ecl_cc_numpy
from repro.verify import reference_labels
from repro.experiments.report import ExperimentReport
from repro.experiments.runner import device_for, suite_graphs
from repro.extensions import afforest_cc
from repro.gpusim.device import TITAN_X

from .conftest import REPORT_DIR


def test_afforest_vs_ecl(benchmark, bench_scale, bench_names, bench_repeats):
    def sweep() -> ExperimentReport:
        report = ExperimentReport(
            "ext-afforest",
            "Afforest vs ECL-CC on the simulated Titan X (modeled ms)",
            ["Graph name", "ECL-CC", "Afforest", "Afforest/ECL", "skipped %"],
        )
        for g in suite_graphs(bench_scale, bench_names):
            dev = device_for(g, TITAN_X)
            ref = reference_labels(g)
            ecl = ecl_cc_gpu(g, device=dev)
            aff = afforest_cc(g, device=dev)
            assert np.array_equal(aff.labels, ref), g.name
            report.add_row(
                g.name,
                round(ecl.total_time_ms, 4),
                round(aff.total_time_ms, 4),
                round(aff.total_time_ms / ecl.total_time_ms, 2),
                round(100 * aff.skipped_vertices / max(g.num_vertices, 1), 1),
            )
        return report

    report = benchmark.pedantic(sweep, rounds=1, iterations=1)
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / f"ext_afforest_{bench_scale}.txt").write_text(report.render() + "\n")
    print()
    print(report.render())


def test_fastsv_vs_numpy_backend(benchmark, bench_scale, bench_names, bench_repeats):
    def sweep() -> ExperimentReport:
        report = ExperimentReport(
            "ext-fastsv",
            "FastSV vs the ECL-style numpy backend (native wall ms)",
            ["Graph name", "numpy backend", "FastSV", "FastSV/numpy", "FastSV iters"],
        )
        for g in suite_graphs(bench_scale, bench_names):
            ref = reference_labels(g)
            t0 = time.perf_counter()
            labels_np, _ = ecl_cc_numpy(g)
            t_np = time.perf_counter() - t0
            t0 = time.perf_counter()
            labels_sv, stats = fastsv_cc(g)
            t_sv = time.perf_counter() - t0
            assert np.array_equal(labels_np, ref), g.name
            assert np.array_equal(labels_sv, ref), g.name
            report.add_row(
                g.name,
                round(t_np * 1e3, 3),
                round(t_sv * 1e3, 3),
                round(t_sv / max(t_np, 1e-9), 2),
                stats.iterations,
            )
        return report

    report = benchmark.pedantic(sweep, rounds=1, iterations=1)
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / f"ext_fastsv_{bench_scale}.txt").write_text(report.render() + "\n")
    print()
    print(report.render())
