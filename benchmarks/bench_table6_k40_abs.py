"""Table 6 — GPU absolute runtimes, K40.

Regenerates the paper artifact 'table6' through the experiment registry;
the benchmark value is the wall time of the full regeneration.
"""

from .conftest import run_and_archive


def test_table6(benchmark, bench_scale, bench_names, bench_repeats):
    report = run_and_archive(benchmark, "table6", bench_scale, bench_names, bench_repeats)
    assert report.rows, "experiment produced no rows"
