"""Benchmark configuration.

Run with::

    pytest benchmarks/ --benchmark-only

Environment knobs:

* ``REPRO_BENCH_SCALE`` — suite scale (``tiny`` default so the whole
  harness completes in minutes; use ``small`` for the higher-fidelity
  numbers recorded in EXPERIMENTS.md).
* ``REPRO_BENCH_NAMES`` — comma-separated subset of the 18 inputs.

Each experiment bench runs its table/figure exactly once (the simulator
is deterministic), reports the wall time of regenerating it through
pytest-benchmark, prints the rendered table, and archives it under
``benchmarks/reports/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import run_experiment

REPORT_DIR = Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "tiny")


@pytest.fixture(scope="session")
def bench_names() -> list[str] | None:
    raw = os.environ.get("REPRO_BENCH_NAMES", "")
    return [n for n in raw.split(",") if n] or None


@pytest.fixture(scope="session")
def bench_repeats() -> int:
    return int(os.environ.get("REPRO_BENCH_REPEATS", "1"))


def run_and_archive(benchmark, exp_id: str, scale: str, names, repeats: int):
    """Regenerate one experiment once, archive and print its report."""
    result = benchmark.pedantic(
        run_experiment,
        args=(exp_id,),
        kwargs={"scale": scale, "names": names, "repeats": repeats},
        rounds=1,
        iterations=1,
    )
    REPORT_DIR.mkdir(exist_ok=True)
    text = result.render()
    (REPORT_DIR / f"{exp_id}_{scale}.txt").write_text(text + "\n")
    print()
    print(text)
    return result
