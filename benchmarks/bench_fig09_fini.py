"""Fig. 9 — finalization ablation (Fini1-3).

Regenerates the paper artifact 'fig09' through the experiment registry;
the benchmark value is the wall time of the full regeneration.
"""

from .conftest import run_and_archive


def test_fig09(benchmark, bench_scale, bench_names, bench_repeats):
    report = run_and_archive(benchmark, "fig09", bench_scale, bench_names, bench_repeats)
    assert report.rows, "experiment produced no rows"
