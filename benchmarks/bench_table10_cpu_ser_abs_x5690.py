"""Table 10 — serial CPU absolute runtimes, X5690.

Regenerates the paper artifact 'table10' through the experiment registry;
the benchmark value is the wall time of the full regeneration.
"""

from .conftest import run_and_archive


def test_table10(benchmark, bench_scale, bench_names, bench_repeats):
    report = run_and_archive(benchmark, "table10", bench_scale, bench_names, bench_repeats)
    assert report.rows, "experiment produced no rows"
