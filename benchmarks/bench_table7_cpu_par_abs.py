"""Table 7 — parallel CPU absolute runtimes, E5-2687W.

Regenerates the paper artifact 'table7' through the experiment registry;
the benchmark value is the wall time of the full regeneration.
"""

from .conftest import run_and_archive


def test_table7(benchmark, bench_scale, bench_names, bench_repeats):
    report = run_and_archive(benchmark, "table7", bench_scale, bench_names, bench_repeats)
    assert report.rows, "experiment produced no rows"
