"""Ablation: the degree thresholds (16/352) that split the three compute
kernels.

The paper (§3): "These thresholds were determined experimentally.
Varying them by quite a bit does not significantly affect the
performance."  This bench sweeps the thresholds and checks that claim:
every configuration must stay within a small factor of the default.
"""

from __future__ import annotations

from repro.core.ecl_cc_gpu import ecl_cc_gpu
from repro.experiments.report import ExperimentReport, geometric_mean
from repro.experiments.runner import device_for, suite_graphs
from repro.gpusim.device import TITAN_X

from .conftest import REPORT_DIR

THRESHOLDS = [(4, 64), (8, 176), (16, 352), (32, 704), (64, 1408)]


def test_threshold_sweep(benchmark, bench_scale, bench_names, bench_repeats):
    def sweep() -> ExperimentReport:
        report = ExperimentReport(
            "ablation-thresholds",
            "ECL-CC runtime relative to the default (16, 352) thresholds",
            ["Graph name", *(f"({m},{h})" for m, h in THRESHOLDS)],
        )
        for g in suite_graphs(bench_scale, bench_names):
            dev = device_for(g, TITAN_X)
            base = ecl_cc_gpu(g, device=dev, thresholds=(16, 352)).total_time_ms
            report.add_row(
                g.name,
                *(
                    round(
                        ecl_cc_gpu(g, device=dev, thresholds=t).total_time_ms / base, 3
                    )
                    for t in THRESHOLDS
                ),
            )
        report.compute_geomean()
        return report

    report = benchmark.pedantic(sweep, rounds=1, iterations=1)
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / f"ablation_thresholds_{bench_scale}.txt").write_text(report.render() + "\n")
    print()
    print(report.render())
    # The paper's insensitivity claim: geomean within 2x of default.
    assert all(
        not isinstance(v, float) or v < 2.0 for v in report.geomean_row[1:]
    )
