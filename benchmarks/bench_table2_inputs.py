"""Table 2 — input-graph statistics.

Regenerates the paper artifact 'table2' through the experiment registry;
the benchmark value is the wall time of the full regeneration.
"""

from .conftest import run_and_archive


def test_table2(benchmark, bench_scale, bench_names, bench_repeats):
    report = run_and_archive(benchmark, "table2", bench_scale, bench_names, bench_repeats)
    assert report.rows, "experiment produced no rows"
