"""Fig. 10 — runtime distribution over the five kernels.

Regenerates the paper artifact 'fig10' through the experiment registry;
the benchmark value is the wall time of the full regeneration.
"""

from .conftest import run_and_archive


def test_fig10(benchmark, bench_scale, bench_names, bench_repeats):
    report = run_and_archive(benchmark, "fig10", bench_scale, bench_names, bench_repeats)
    assert report.rows, "experiment produced no rows"
