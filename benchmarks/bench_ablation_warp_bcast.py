"""Ablation: per-lane redundant find vs lane-0 broadcast in the warp
kernel.

The released ECL-CC code lets every lane of the warp compute the
vertex's representative redundantly; lockstep execution coalesces those
loads, so the redundancy is nearly free — cheaper than a shuffle-based
broadcast whose spin costs issue slots.  This bench quantifies that
design choice on the inputs that actually exercise the warp kernel.
"""

from __future__ import annotations

import numpy as np

from repro.core.ecl_cc_gpu import ecl_cc_gpu
from repro.verify import reference_labels
from repro.experiments.report import ExperimentReport
from repro.experiments.runner import device_for, suite_graphs
from repro.gpusim.device import TITAN_X

from .conftest import REPORT_DIR


def test_warp_broadcast_ablation(benchmark, bench_scale, bench_names, bench_repeats):
    def sweep() -> ExperimentReport:
        report = ExperimentReport(
            "ablation-warp-bcast",
            "Warp kernel: lane-0 broadcast relative to redundant find",
            ["Graph name", "kernel2 vertices", "redundant (ms)",
             "broadcast (ms)", "broadcast/redundant"],
        )
        for g in suite_graphs(bench_scale, bench_names):
            dev = device_for(g, TITAN_X)
            ref = reference_labels(g)
            base = ecl_cc_gpu(g, device=dev)
            if base.worklist_front == 0:
                continue  # warp kernel unused on this input
            bcast = ecl_cc_gpu(g, device=dev, warp_broadcast=True)
            assert np.array_equal(bcast.labels, ref), g.name
            t_base = base.kernels[2].time_ms
            t_bcast = bcast.kernels[2].time_ms
            report.add_row(
                g.name,
                base.worklist_front,
                round(t_base, 4),
                round(t_bcast, 4),
                round(t_bcast / max(t_base, 1e-12), 3),
            )
        report.compute_geomean()
        return report

    report = benchmark.pedantic(sweep, rounds=1, iterations=1)
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / f"ablation_warp_bcast_{bench_scale}.txt").write_text(
        report.render() + "\n"
    )
    print()
    print(report.render())
