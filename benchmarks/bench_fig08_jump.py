"""Fig. 8 — pointer-jumping ablation (Jump1-4).

Regenerates the paper artifact 'fig08' through the experiment registry;
the benchmark value is the wall time of the full regeneration.
"""

from .conftest import run_and_archive


def test_fig08(benchmark, bench_scale, bench_names, bench_repeats):
    report = run_and_archive(benchmark, "fig08", bench_scale, bench_names, bench_repeats)
    assert report.rows, "experiment produced no rows"
