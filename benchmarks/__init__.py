"""Benchmark harness package (see conftest for knobs)."""
