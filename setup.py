"""Setup shim: enables `python setup.py develop` on environments without
the `wheel` package (PEP 660 editable installs require it)."""
from setuptools import setup

setup()
